package synth

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// The paper's Figure 4 flow reviews CESC verification plans before
// monitors are synthesized: the specifications "can be formally analyzed
// for specification inconsistencies". Analyze implements that review as
// a static pass over a chart, reporting contradictions, vacuities and
// redundancies that would silently weaken the verification plan.

// Severity grades a finding.
type Severity int

const (
	// Warning marks a suspicious but synthesizable specification.
	Warning Severity = iota
	// Error marks a specification whose monitor would be degenerate.
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one analysis result.
type Finding struct {
	Severity Severity
	// Code is a stable identifier, e.g. "unsat-line", "dead-alt".
	Code string
	// Msg is the human-readable explanation.
	Msg string
}

// String renders "error[unsat-line]: ...".
func (f Finding) String() string {
	return fmt.Sprintf("%s[%s]: %s", f.Severity, f.Code, f.Msg)
}

// Analyze statically checks a chart for specification inconsistencies.
// It assumes the chart already passes Validate (structural
// well-formedness); Analyze looks for semantic defects:
//
//   - unsat-line: a grid line's expression is unsatisfiable (the window
//     can never occur);
//   - unsat-overlay: a par overlay makes some tick unsatisfiable even
//     though each child alone is satisfiable;
//   - negated-only: an event is only ever required absent — usually a
//     typo for a positive occurrence elsewhere;
//   - empty-window: the chart admits the empty window (detector would
//     accept vacuously);
//   - dead-alt: an alternative branch whose window language is contained
//     in a sibling's — the branch can never be the reason a scenario is
//     reported;
//   - vacuous-implication: the implication's trigger is unsatisfiable
//     (the assertion can never fire).
func Analyze(c chart.Chart) ([]Finding, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []Finding
	if err := analyzeNode(c, &out); err != nil {
		return nil, err
	}
	out = append(out, analyzeNegatedOnly(c)...)
	// The empty-window defect is a property of the whole chart's window
	// language — a min-0 loop nested inside a sequence is harmless.
	switch c.(type) {
	case *chart.Implies, *chart.Async:
		// Not window languages at the top level.
	default:
		if a, frag, err := chartNFA(c); err == nil {
			a.start, a.accept = frag.start, frag.accept
			if a.acceptsEmpty() {
				out = append(out, Finding{
					Severity: Error, Code: "empty-window",
					Msg: fmt.Sprintf("chart %q admits the empty window; its detector would accept at every tick", chartName(c, "chart")),
				})
			}
		}
	}
	return out, nil
}

func analyzeNode(c chart.Chart, out *[]Finding) error {
	switch v := c.(type) {
	case *chart.SCESC:
		p := ExtractPattern(v)
		if _, err := p.Support(); err != nil {
			return err
		}
		for i, e := range p {
			sat, err := expr.SatAuto(e)
			if err != nil {
				return err
			}
			if !sat {
				*out = append(*out, Finding{
					Severity: Error, Code: "unsat-line",
					Msg: fmt.Sprintf("chart %q: grid line %d is unsatisfiable: %s", v.ChartName, i, e),
				})
			}
		}
	case *chart.Seq:
		for _, ch := range v.Children {
			if err := analyzeNode(ch, out); err != nil {
				return err
			}
		}
	case *chart.Par:
		for _, ch := range v.Children {
			if err := analyzeNode(ch, out); err != nil {
				return err
			}
		}
		if mp, err := mergePattern(v); err == nil && mp != nil {
			if _, err := mp.p.Support(); err != nil {
				return err
			}
			for i, e := range mp.p {
				sat, err := expr.SatAuto(e)
				if err != nil {
					return err
				}
				if !sat {
					*out = append(*out, Finding{
						Severity: Error, Code: "unsat-overlay",
						Msg: fmt.Sprintf("chart %q: overlay makes tick %d unsatisfiable: %s", v.ChartName, i, e),
					})
				}
			}
		}
	case *chart.Alt:
		for _, ch := range v.Children {
			if err := analyzeNode(ch, out); err != nil {
				return err
			}
		}
		findDeadAlternatives(v, out)
	case *chart.Loop:
		if err := analyzeNode(v.Body, out); err != nil {
			return err
		}
	case *chart.Implies:
		if err := analyzeNode(v.Trigger, out); err != nil {
			return err
		}
		if err := analyzeNode(v.Consequent, out); err != nil {
			return err
		}
		if empty, err := languageEmpty(v.Trigger); err == nil && empty {
			*out = append(*out, Finding{
				Severity: Warning, Code: "vacuous-implication",
				Msg: fmt.Sprintf("chart %q: implication trigger has an empty language; the assertion can never fire", v.ChartName),
			})
		}
	case *chart.Async:
		for _, ch := range v.Children {
			if err := analyzeNode(ch, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// analyzeNegatedOnly flags events that appear only under negation.
func analyzeNegatedOnly(c chart.Chart) []Finding {
	pos := map[string]bool{}
	neg := map[string]bool{}
	for _, sc := range chart.Leaves(c) {
		for _, line := range sc.Lines {
			for _, e := range line.Events {
				if e.Negated {
					neg[e.Event] = true
				} else {
					pos[e.Event] = true
				}
			}
		}
	}
	var out []Finding
	for e := range neg {
		if !pos[e] {
			out = append(out, Finding{
				Severity: Warning, Code: "negated-only",
				Msg: fmt.Sprintf("event %q is only ever required absent; is a positive occurrence missing?", e),
			})
		}
	}
	return out
}

// chartNFA builds the window NFA of a chart.
func chartNFA(c chart.Chart) (*nfa, fragment, error) {
	a := newNFA()
	frag, err := buildFragment(a, c)
	return a, frag, err
}

// languageEmpty reports whether no window at all satisfies the chart.
func languageEmpty(c chart.Chart) (bool, error) {
	a, frag, err := chartNFA(c)
	if err != nil {
		return false, err
	}
	a.start, a.accept = frag.start, frag.accept
	sup, err := a.support()
	if err != nil {
		return false, err
	}
	if sup.Len() > maxEnumerateBits {
		return false, fmt.Errorf("synth: support too large for emptiness analysis")
	}
	m, err := a.determinize(determinizeOpts{name: "empt", clock: clockOf(c), prefixLoop: false})
	if err != nil {
		// determinize reports "empty language" as an error.
		return true, nil
	}
	return len(m.Finals) == 0, nil
}

// findDeadAlternatives flags Alt branches whose language is included in a
// sibling's (checked over the shared support via DFA inclusion).
func findDeadAlternatives(v *chart.Alt, out *[]Finding) {
	dfas := make([]*monitor.Monitor, len(v.Children))
	var syms []event.Symbol
	for i, ch := range v.Children {
		a, frag, err := chartNFA(ch)
		if err != nil {
			return
		}
		a.start, a.accept = frag.start, frag.accept
		m, err := a.determinize(determinizeOpts{name: fmt.Sprintf("alt%d", i), clock: clockOf(ch), prefixLoop: false})
		if err != nil {
			return
		}
		dfas[i] = m
		s, err := m.Support()
		if err != nil {
			return
		}
		syms = append(syms, s.Symbols()...)
	}
	sup, err := event.NewSupport(syms)
	if err != nil || sup.Len() > maxEnumerateBits {
		return
	}
	for i := range dfas {
		for j := range dfas {
			if i == j {
				continue
			}
			if included, ok := dfaIncluded(dfas[i], dfas[j], sup); ok && included {
				*out = append(*out, Finding{
					Severity: Warning, Code: "dead-alt",
					Msg: fmt.Sprintf("chart %q: alternative branch %d (%s) is subsumed by branch %d (%s)",
						v.ChartName, i, chart.Describe(v.Children[i]), j, chart.Describe(v.Children[j])),
				})
				break
			}
		}
	}
}

// dfaIncluded reports L(a) ⊆ L(b) by a product walk over valuations of
// sup. Both DFAs must be deterministic on first-match; missing moves go
// to an implicit dead state.
func dfaIncluded(a, b *monitor.Monitor, sup *event.Support) (included, ok bool) {
	type pair struct{ sa, sb int }
	const dead = -1
	step := func(m *monitor.Monitor, s int, ctx event.ValuationContext) int {
		if s == dead {
			return dead
		}
		for _, t := range m.Trans[s] {
			if t.Guard.Eval(ctx) {
				return t.To
			}
		}
		return dead
	}
	seen := map[pair]bool{}
	stack := []pair{{a.Initial, b.Initial}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.sa != dead && a.IsFinal(cur.sa) {
			if cur.sb == dead || !b.IsFinal(cur.sb) {
				return false, true // word accepted by a, not by b
			}
		}
		for v := uint64(0); v < sup.NumValuations(); v++ {
			ctx := event.ValuationContext{Sup: sup, Val: event.Valuation(v)}
			next := pair{step(a, cur.sa, ctx), step(b, cur.sb, ctx)}
			if next.sa == dead {
				continue // a rejects; inclusion unaffected
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return true, true
}
