package synth

import (
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/ocp"
	"repro/internal/readproto"
)

func findingCodes(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Code)
	}
	return out
}

func hasCode(fs []Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}

func TestAnalyzeCleanCharts(t *testing.T) {
	for _, c := range []chart.Chart{
		ocp.SimpleReadChart(),
		ocp.BurstReadChart(),
		readproto.SingleClockChart(),
		readproto.MultiClockChart(),
		ocp.HandshakeChart(3),
	} {
		fs, err := Analyze(c)
		if err != nil {
			t.Fatalf("%s: %v", chart.Describe(c), err)
		}
		for _, f := range fs {
			// The handshake chart legitimately requires SCmd_accept both
			// positively and negatively; nothing else should fire.
			t.Errorf("%s: unexpected finding %s", chart.Describe(c), f)
		}
	}
}

func TestAnalyzeUnsatOverlay(t *testing.T) {
	// Each child is satisfiable; the overlay requires x and !x together.
	a := &chart.SCESC{ChartName: "a", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{{Event: "x"}}},
	}}
	b := &chart.SCESC{ChartName: "b", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{{Event: "x", Negated: true}, {Event: "y"}}},
	}}
	c := &chart.Par{ChartName: "conflict", Children: []chart.Chart{a, b}}
	fs, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(fs, "unsat-overlay") {
		t.Errorf("findings = %v, want unsat-overlay", findingCodes(fs))
	}
}

func TestAnalyzeNegatedOnly(t *testing.T) {
	c := &chart.SCESC{ChartName: "n", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{{Event: "req"}, {Event: "abrot", Negated: true}}},
	}}
	fs, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(fs, "negated-only") {
		t.Errorf("findings = %v, want negated-only (typo detection)", findingCodes(fs))
	}
	for _, f := range fs {
		if f.Code == "negated-only" && !strings.Contains(f.Msg, "abrot") {
			t.Errorf("finding does not name the event: %s", f)
		}
	}
}

func TestAnalyzeEmptyWindowLoop(t *testing.T) {
	c := &chart.Loop{
		ChartName: "opt",
		Body:      leaf("b", "x"),
		Min:       0,
		Max:       2,
	}
	fs, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(fs, "empty-window") {
		t.Errorf("findings = %v, want empty-window", findingCodes(fs))
	}
}

func TestAnalyzeDeadAlternative(t *testing.T) {
	// Branch 1 ("x then y") is subsumed by branch 0 (alt of itself and
	// more): construct a case where one branch's language contains the
	// other's: branch A = {x;y}, branch B = alt({x;y},{x;z}) — then A ⊆ B.
	a := leaf("a", "x", "y")
	b := &chart.Alt{ChartName: "inner", Children: []chart.Chart{
		leaf("b1", "x", "y"),
		leaf("b2", "x", "z"),
	}}
	c := &chart.Alt{ChartName: "outer", Children: []chart.Chart{a, b}}
	fs, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(fs, "dead-alt") {
		t.Errorf("findings = %v, want dead-alt", findingCodes(fs))
	}
}

func TestAnalyzeDistinctAlternativesClean(t *testing.T) {
	c := &chart.Alt{ChartName: "ok", Children: []chart.Chart{
		leaf("a", "x", "y"),
		leaf("b", "x", "z"),
	}}
	fs, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if hasCode(fs, "dead-alt") {
		t.Errorf("distinct branches flagged dead: %v", findingCodes(fs))
	}
}

func TestAnalyzeVacuousImplication(t *testing.T) {
	// Trigger with an unsatisfiable line: x & !x.
	trigger := &chart.SCESC{ChartName: "t", Clock: "clk", Lines: []chart.GridLine{
		{Cond: expr.And(expr.Ev("x"), expr.Not(expr.Ev("x")))},
	}}
	c := &chart.Implies{ChartName: "vac", Trigger: trigger, Consequent: leaf("c", "y")}
	fs, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !hasCode(fs, "vacuous-implication") {
		t.Errorf("findings = %v, want vacuous-implication", findingCodes(fs))
	}
	if !hasCode(fs, "unsat-line") {
		t.Errorf("findings = %v, want unsat-line for the trigger", findingCodes(fs))
	}
}

func TestAnalyzeRejectsInvalidChart(t *testing.T) {
	if _, err := Analyze(&chart.SCESC{ChartName: "x", Clock: "clk"}); err == nil {
		t.Error("invalid chart analyzed")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: Error, Code: "unsat-line", Msg: "boom"}
	if got := f.String(); got != "error[unsat-line]: boom" {
		t.Errorf("string = %q", got)
	}
	w := Finding{Severity: Warning, Code: "dead-alt", Msg: "m"}
	if !strings.HasPrefix(w.String(), "warning[") {
		t.Errorf("string = %q", w)
	}
}
