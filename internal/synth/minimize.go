package synth

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// Minimize reduces a monitor to its minimal deterministic form by Moore
// partition refinement over the valuation classes of its input support.
// It applies to action-free monitors without scoreboard guards — exactly
// the automata produced by structural composition (subset construction
// routinely leaves redundant states there). Monitors carrying scoreboard
// actions or Chk_evt guards are returned unchanged: their states encode
// scoreboard bookkeeping that state merging would corrupt.
//
// The result accepts exactly the same inputs at exactly the same ticks
// (property-tested), with Finals, Initial and Violation remapped.
func Minimize(m *monitor.Monitor) (*monitor.Monitor, error) {
	if hasActionsOrChk(m) {
		return m, nil
	}
	sup, err := m.Support()
	if err != nil {
		return nil, err
	}
	if sup.Len() > maxEnumerateBits {
		return m, nil
	}
	nv := sup.NumValuations()

	// Concrete transition table. An uncovered input maps to the initial
	// state, mirroring the engine's hard-reset convention.
	delta := make([][]int, m.States)
	for s := 0; s < m.States; s++ {
		delta[s] = make([]int, nv)
		for v := uint64(0); v < nv; v++ {
			ctx := event.ValuationContext{Sup: sup, Val: event.Valuation(v)}
			to := m.Initial
			for _, t := range m.Trans[s] {
				if t.Guard.Eval(ctx) {
					to = t.To
					break
				}
			}
			delta[s][v] = to
		}
	}

	// Initial partition: final / violation / ordinary.
	class := make([]int, m.States)
	for s := 0; s < m.States; s++ {
		switch {
		case s == m.Violation:
			class[s] = 2
		case m.IsFinal(s):
			class[s] = 1
		default:
			class[s] = 0
		}
	}

	// Refine until stable.
	for {
		sig := make(map[string]int)
		next := make([]int, m.States)
		for s := 0; s < m.States; s++ {
			key := fmt.Sprint(class[s], ":")
			for v := uint64(0); v < nv; v++ {
				key += fmt.Sprint(class[delta[s][v]], ",")
			}
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			next[s] = id
		}
		if equalInts(next, class) {
			break
		}
		class = next
	}

	nClasses := 0
	for _, c := range class {
		if c+1 > nClasses {
			nClasses = c + 1
		}
	}
	if nClasses == m.States {
		return m, nil // already minimal
	}

	// Rebuild: one representative state per class.
	rep := make([]int, nClasses)
	for i := range rep {
		rep[i] = -1
	}
	for s := 0; s < m.States; s++ {
		if rep[class[s]] == -1 {
			rep[class[s]] = s
		}
	}
	out := monitor.New(m.Name+"_min", m.Clock, nClasses)
	out.Initial = class[m.Initial]
	out.Linear = false
	if m.Violation != monitor.NoState {
		out.Violation = class[m.Violation]
	}
	var finals []int
	seenFinal := make(map[int]bool)
	for s := 0; s < m.States; s++ {
		if m.IsFinal(s) && !seenFinal[class[s]] {
			seenFinal[class[s]] = true
			finals = append(finals, class[s])
		}
	}
	sort.Ints(finals)
	out.Finals = finals
	if len(finals) > 0 {
		out.Final = finals[0]
	}
	for c := 0; c < nClasses; c++ {
		s := rep[c]
		byTarget := make(map[int][]event.Valuation)
		var order []int
		for v := uint64(0); v < nv; v++ {
			to := class[delta[s][v]]
			if _, ok := byTarget[to]; !ok {
				order = append(order, to)
			}
			byTarget[to] = append(byTarget[to], event.Valuation(v))
		}
		for _, to := range order {
			out.AddTransition(c, monitor.Transition{
				To:    to,
				Guard: expr.FromMinterms(sup, byTarget[to]),
			})
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("synth: minimization produced invalid monitor: %w", err)
	}
	return out, nil
}

func hasActionsOrChk(m *monitor.Monitor) bool {
	for _, ts := range m.Trans {
		for _, t := range ts {
			if len(t.Actions) > 0 || len(expr.ChkRefs(t.Guard)) > 0 {
				return true
			}
		}
	}
	return false
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
