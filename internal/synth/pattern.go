// Package synth implements the paper's translation algorithm Tr: it
// synthesizes assertion monitors from CESC specifications. For an SCESC
// it extracts the event pattern (extract_pattern), computes the
// generalized string-matching transition function
// (compute_transition_func), and instruments causality arrows with
// scoreboard actions (add_causality_check). Structural constructs are
// compiled compositionally on monitors. Asynchronous (multi-clock)
// composition is handled by package mclock on top of this package.
package synth

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
)

// Pattern is the paper's P: one logical expression per grid line, where
// the expression of line i must be satisfied by the i-th element of a
// matching trace window.
type Pattern []expr.Expr

// ExtractPattern implements the paper's extract_pattern subroutine:
// event `e` contributes e; guarded `p:e` contributes p & e; multiple
// events on a line are conjoined; an empty grid line contributes true.
func ExtractPattern(c *chart.SCESC) Pattern {
	p := make(Pattern, len(c.Lines))
	for i, line := range c.Lines {
		p[i] = line.Expr()
	}
	return p
}

// Support returns the union input support of all pattern elements.
func (p Pattern) Support() (*event.Support, error) {
	return expr.SupportOf([]expr.Expr(p)...)
}

// Validate rejects patterns with unsatisfiable elements: a contradictory
// grid line makes the chart's language empty and is always a
// specification error. Each element is checked over its own support —
// satisfiability only depends on the symbols it mentions.
func (p Pattern) Validate() error {
	if _, err := p.Support(); err != nil {
		return fmt.Errorf("synth: %w", err)
	}
	for i, e := range p {
		sat, err := expr.SatAuto(e)
		if err != nil {
			return fmt.Errorf("synth: grid line %d: %w", i, err)
		}
		if !sat {
			return fmt.Errorf("synth: grid line %d is unsatisfiable: %s", i, e)
		}
	}
	return nil
}

// Orthogonal reports whether all pattern elements are pairwise mutually
// exclusive. For orthogonal patterns the synthesized automaton is an
// exact window matcher (see DESIGN.md §3.1).
func (p Pattern) Orthogonal() (bool, error) {
	for i := 0; i < len(p); i++ {
		for j := i + 1; j < len(p); j++ {
			compat, err := expr.CompatibleAuto(p[i], p[j])
			if err != nil {
				return false, err
			}
			if compat {
				return false, nil
			}
		}
	}
	return true, nil
}

// History selects how the suffix_of check abstracts already-matched trace
// elements. The monitor's state remembers only that element j of the
// current window satisfied P[j]; whether that element can stand in for
// prefix element P[i] after a shift admits two readings, and the paper's
// prose ("there exists an element-by-element matching") and its drawn
// monitors (Fig. 5's give-up edge d = !a & !c) correspond to different
// ones. Both are provided; see DESIGN.md §3.1 and experiment E9.
type History int

const (
	// HistImplication keeps a fallback candidate only when the old
	// element guarantees the new one (P[j] => P[i]). The automaton is
	// sound — it never reports a window that did not occur — and matches
	// the paper's drawn monitors. This is the default.
	HistImplication History = iota
	// HistSatisfiable keeps a candidate when the two elements can hold
	// together (P[i] & P[j] satisfiable). The automaton is complete — it
	// never misses a window — but may over-report on non-orthogonal
	// patterns.
	HistSatisfiable
)

// String names the abstraction.
func (h History) String() string {
	if h == HistSatisfiable {
		return "satisfiable"
	}
	return "implication"
}

// compatMatrix precomputes the history-abstraction relation:
// compat[i][j] reports whether a trace element known to have satisfied
// P[j] may be counted as satisfying P[i] after a shift. Each pair is
// decided over its own union support (the ambient alphabet is
// irrelevant to the answer and exponentially more expensive).
func (p Pattern) compatMatrix(sup *event.Support, h History) [][]bool {
	_ = sup // the pairwise checks build their own minimal supports
	n := len(p)
	m := make([][]bool, n)
	for i := range m {
		m[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v bool
			var err error
			switch h {
			case HistSatisfiable:
				v, err = expr.CompatibleAuto(p[i], p[j])
			default:
				v, err = expr.ImpliesAuto(p[j], p[i])
			}
			if err != nil {
				// Kind conflicts were already rejected by Support();
				// treat a residual failure conservatively.
				v = h == HistSatisfiable
			}
			m[i][j] = v
		}
	}
	return m
}

// histCompat reports whether pattern prefix P[0..k-1] can align with the
// abstracted history when the monitor is in state s — i.e. the first k-1
// prefix elements are compatible with the trace positions they would
// cover (the k-th element is checked against the concrete input
// separately). Positions are those of the paper's T_s·e suffix check.
func histCompat(compat [][]bool, s, k int) bool {
	// Pattern element i (0-based, i < k-1) aligns with trace position
	// s+1-k+i, which matched pattern element s+1-k+i during the current
	// attempt (positions are < s so they are abstracted by the pattern).
	for i := 0; i < k-1; i++ {
		pos := s + 1 - k + i
		if !compat[i][pos] {
			return false
		}
	}
	return true
}

// candidates returns, for state s, the descending list of match lengths
// k in [1, min(n, s+1)] whose history alignment is feasible. The paper's
// inner while-loop scans exactly this list; the transition target for an
// input e is the first candidate k whose P[k-1] is satisfied by e
// (else 0).
func (p Pattern) candidates(compat [][]bool, s int) []int {
	n := len(p)
	top := s + 1
	if top > n {
		top = n
	}
	var out []int
	for k := top; k >= 1; k-- {
		if histCompat(compat, s, k) {
			out = append(out, k)
		}
	}
	return out
}
