package synth

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// General synchronous-parallel composition: when par children are not
// pattern-shaped (e.g. an alternative overlaid on a sequence), the
// overlay's window language is the intersection of the children's window
// languages on equal-length windows. It is computed as a product of the
// children's window DFAs, folded pairwise, then re-embedded as an NFA
// fragment so the usual prefix-loop determinization applies.

// windowDFA compiles a chart's window language into a deterministic
// monitor (no Sigma* prefix loop; Finals mark accepting subsets).
func windowDFA(c chart.Chart) (*monitor.Monitor, error) {
	a, frag, err := chartNFA(c)
	if err != nil {
		return nil, err
	}
	a.start, a.accept = frag.start, frag.accept
	return a.determinize(determinizeOpts{
		name:  chartName(c, "window"),
		clock: clockOf(c),
	})
}

// productWindowDFA intersects two window DFAs over their union support.
// States are reachable pairs; an input moves both components (a missing
// move kills the pair); accepting pairs are those where both components
// accept.
func productWindowDFA(a, b *monitor.Monitor) (*monitor.Monitor, error) {
	supA, err := a.Support()
	if err != nil {
		return nil, err
	}
	supB, err := b.Support()
	if err != nil {
		return nil, err
	}
	sup, err := supA.Union(supB)
	if err != nil {
		return nil, err
	}
	if sup.Len() > maxEnumerateBits {
		return nil, fmt.Errorf("synth: par product support of %d symbols exceeds limit %d",
			sup.Len(), maxEnumerateBits)
	}
	nv := sup.NumValuations()

	step := func(m *monitor.Monitor, s int, ctx event.ValuationContext) int {
		for _, t := range m.Trans[s] {
			if t.Guard.Eval(ctx) {
				return t.To
			}
		}
		return -1
	}

	type pair struct{ sa, sb int }
	index := map[pair]int{}
	var order []pair
	intern := func(p pair) int {
		if id, ok := index[p]; ok {
			return id
		}
		id := len(order)
		index[p] = id
		order = append(order, p)
		return id
	}
	start := intern(pair{a.Initial, b.Initial})

	type edge struct {
		to int
		ms []event.Valuation
	}
	var rows [][]edge
	for cur := 0; cur < len(order); cur++ {
		p := order[cur]
		byTarget := map[pair]*edge{}
		var tOrder []pair
		for v := uint64(0); v < nv; v++ {
			ctx := event.ValuationContext{Sup: sup, Val: event.Valuation(v)}
			na := step(a, p.sa, ctx)
			nb := step(b, p.sb, ctx)
			if na < 0 || nb < 0 {
				continue // pair dies: word leaves one language
			}
			np := pair{na, nb}
			e, ok := byTarget[np]
			if !ok {
				e = &edge{to: intern(np)}
				byTarget[np] = e
				tOrder = append(tOrder, np)
			}
			e.ms = append(e.ms, event.Valuation(v))
		}
		row := make([]edge, 0, len(tOrder))
		for _, np := range tOrder {
			row = append(row, *byTarget[np])
		}
		rows = append(rows, row)
	}

	out := monitor.New("par_product", a.Clock, len(order))
	out.Initial = start
	var finals []int
	for id, p := range order {
		if a.IsFinal(p.sa) && b.IsFinal(p.sb) {
			finals = append(finals, id)
		}
	}
	if len(finals) == 0 {
		return nil, fmt.Errorf("synth: par overlay has an empty language (children never agree on a window)")
	}
	out.Finals = finals
	out.Final = finals[0]
	for s, row := range rows {
		for _, e := range row {
			out.AddTransition(s, monitor.Transition{To: e.to, Guard: expr.FromMinterms(sup, e.ms)})
		}
	}
	return out, nil
}

// parWindowDFA folds the product over all children of a Par.
func parWindowDFA(v *chart.Par) (*monitor.Monitor, error) {
	var acc *monitor.Monitor
	for _, ch := range v.Children {
		d, err := windowDFA(ch)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = d
			continue
		}
		acc, err = productWindowDFA(acc, d)
		if err != nil {
			return nil, fmt.Errorf("synth: chart %q: %w", v.ChartName, err)
		}
	}
	return acc, nil
}

// dfaFragment embeds a window DFA into an NFA arena as a fragment:
// states map one-to-one, guards carry over, and every accepting state
// gains an epsilon edge to a fresh accept node.
func dfaFragment(a *nfa, m *monitor.Monitor) fragment {
	base := make([]int, m.States)
	for s := 0; s < m.States; s++ {
		base[s] = a.addState()
	}
	accept := a.addState()
	for s := 0; s < m.States; s++ {
		for _, t := range m.Trans[s] {
			a.addEdge(base[s], base[t.To], t.Guard)
		}
		if m.IsFinal(s) {
			a.addEps(base[s], accept)
		}
	}
	return fragment{start: base[m.Initial], accept: accept}
}
