package synth

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// Strategy selects how compute_transition_func is realized.
type Strategy int

const (
	// StrategyDirect builds guards symbolically from the candidate list
	// of each state: the transition to candidate k is guarded by P[k-1]
	// conjoined with the negations of all higher candidates' elements
	// (dropped when provably orthogonal). It is semantically equivalent
	// to StrategyEnumerate and much cheaper; it also reproduces the
	// compact labels of the paper's figures. This is the default.
	StrategyDirect Strategy = iota
	// StrategyEnumerate is the paper's pseudocode verbatim: iterate every
	// valuation e of 2^Sigma (restricted to the pattern's support), run
	// the while-loop to find the fallback target, then re-compress the
	// per-valuation map into symbolic guards via two-level minimization.
	StrategyEnumerate
)

// String names the strategy.
func (s Strategy) String() string {
	if s == StrategyEnumerate {
		return "enumerate"
	}
	return "direct"
}

// maxEnumerateBits caps StrategyEnumerate's valuation sweep.
const maxEnumerateBits = 20

// ComputeTransitionFunc implements the paper's compute_transition_func:
// it fills in the transition function of the n+1-state monitor for
// pattern p. The returned monitor has states 0..n, initial 0, final n,
// and total, pairwise-disjoint guards; scoreboard actions are added later
// by AddCausalityCheck.
func ComputeTransitionFunc(name, clock string, p Pattern, opts *Options) (*monitor.Monitor, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sup, err := p.Support()
	if err != nil {
		return nil, err
	}
	n := len(p)
	m := monitor.New(name, clock, n+1)
	m.Linear = true
	compat := p.compatMatrix(sup, opts.History)
	switch opts.Strategy {
	case StrategyDirect:
		buildDirect(m, p, sup, compat)
	case StrategyEnumerate:
		if sup.Len() > maxEnumerateBits {
			return nil, fmt.Errorf("synth: support of %d symbols too large for enumerate strategy (max %d); use StrategyDirect",
				sup.Len(), maxEnumerateBits)
		}
		buildEnumerate(m, p, sup, compat)
	default:
		return nil, fmt.Errorf("synth: unknown strategy %d", int(opts.Strategy))
	}
	return m, nil
}

// buildDirect emits, per state s, one transition per feasible candidate k
// (guard: P[k-1] minus all higher candidates) plus the give-up edge to 0.
func buildDirect(m *monitor.Monitor, p Pattern, sup *event.Support, compat [][]bool) {
	n := len(p)
	for s := 0; s <= n; s++ {
		cands := p.candidates(compat, s)
		var higher []expr.Expr
		for _, k := range cands {
			terms := []expr.Expr{p[k-1]}
			for _, h := range higher {
				// Skip the negation when orthogonality already excludes
				// the higher candidate; keeps guards as small as the
				// paper's hand-drawn labels.
				if orth, err := expr.OrthogonalAuto(p[k-1], h); err == nil && orth {
					continue
				}
				terms = append(terms, expr.Not(h))
			}
			guard := expr.And(terms...)
			// A candidate fully shadowed by higher ones (e.g. anything
			// below a TRUE grid line) contributes no edge.
			if !expr.Equal(guard, expr.False) {
				m.AddTransition(s, monitor.Transition{To: k, Guard: guard})
			}
			higher = append(higher, p[k-1])
		}
		// Give-up edge: none of the candidates' elements matched.
		neg := make([]expr.Expr, len(cands))
		for i, k := range cands {
			neg[i] = expr.Not(p[k-1])
		}
		if giveup := expr.And(neg...); !expr.Equal(giveup, expr.False) {
			m.AddTransition(s, monitor.Transition{To: 0, Guard: giveup})
		}
	}
}

// buildEnumerate is the paper's per-valuation loop. For each state and
// each valuation of the support it runs the while-loop over prefix
// lengths, then groups valuations by target and minimizes each group back
// into a symbolic guard.
func buildEnumerate(m *monitor.Monitor, p Pattern, sup *event.Support, compat [][]bool) {
	n := len(p)
	nv := sup.NumValuations()
	// Precompute which valuations satisfy each pattern element.
	sat := make([][]bool, n)
	for i, e := range p {
		sat[i] = make([]bool, nv)
		for v := uint64(0); v < nv; v++ {
			sat[i][v] = e.Eval(event.ValuationContext{Sup: sup, Val: event.Valuation(v)})
		}
	}
	for s := 0; s <= n; s++ {
		targets := make(map[int][]event.Valuation)
		for v := uint64(0); v < nv; v++ {
			k := s + 1
			if k > n {
				k = n
			}
			// while not (P_k suffix_of T_s·e) do k = k-1
			for k > 0 {
				if histCompat(compat, s, k) && sat[k-1][v] {
					break
				}
				k--
			}
			targets[k] = append(targets[k], event.Valuation(v))
		}
		for k := n; k >= 0; k-- {
			ms, ok := targets[k]
			if !ok {
				continue
			}
			guard := expr.FromMinterms(sup, ms)
			m.AddTransition(s, monitor.Transition{To: k, Guard: guard})
		}
	}
}
