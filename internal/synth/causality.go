package synth

import (
	"fmt"
	"sort"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// causalitySite describes one causality arrow resolved to pattern ticks.
type causalitySite struct {
	srcEvent string // ex
	srcTick  int    // tick at which ex occurs
	dstEvent string // ey
	dstTick  int    // tick at which ey occurs (NoTick for cross-domain)
}

// NoTick marks a causality endpoint living in another clock domain.
const NoTick = -1

// AddCausalityCheck implements the paper's add_causality_check on a
// monitor built by ComputeTransitionFunc for pattern p:
//
//   - every transition that consumes the source occurrence's grid line
//     gets the action Add_evt(ex);
//   - every transition that consumes the target occurrence's grid line
//     gets the additional guard Chk_evt(ex);
//   - every backward transition reverses, via Del_evt, the Add_evt
//     actions of the forward path it abandons.
//
// A transition to state k >= 1 consumes pattern element k-1 (it fires
// exactly when the input matches P[k-1] as the newest element of a
// k-length prefix match); a transition to 0 consumes nothing.
func AddCausalityCheck(m *monitor.Monitor, p Pattern, sc *chart.SCESC) error {
	sites, err := resolveArrows(sc)
	if err != nil {
		return err
	}
	addsAt := make(map[int][]string) // tick -> events to Add_evt
	chkAt := make(map[int][]string)  // tick -> events to Chk_evt
	for _, s := range sites {
		addsAt[s.srcTick] = append(addsAt[s.srcTick], s.srcEvent)
		if s.dstTick != NoTick {
			chkAt[s.dstTick] = append(chkAt[s.dstTick], s.srcEvent)
		}
	}
	instrument(m, addsAt, chkAt)
	return nil
}

// InstrumentCrossDomain adds the local half of cross-domain causality
// arrows to a monitor: Add_evt at source sites owned by this chart and
// Chk_evt guards at target sites owned by this chart (package mclock
// resolves arrow endpoints across the async children).
//
// Unlike in-domain arrows, cross-domain Add_evt entries are never
// reversed by backward transitions: the producing monitor recorded a
// genuine event occurrence (its input element concretely matched), and
// the consuming domain's causality check only requires that the source
// event occurred at an earlier global time — abandoning the producer's
// *window* does not un-happen the event. Reversing them would race the
// consumer: the producer's give-up edge could erase an entry between the
// occurrence and the consumer's Chk_evt (see DESIGN.md §3.2).
func InstrumentCrossDomain(m *monitor.Monitor, addsAt, chkAt map[int][]string) {
	for tick, evs := range addsAt {
		addsAt[tick] = dedupeSorted(evs)
	}
	for tick, evs := range chkAt {
		chkAt[tick] = dedupeSorted(evs)
	}
	for s := 0; s < m.States; s++ {
		for i := range m.Trans[s] {
			t := &m.Trans[s][i]
			consumed := t.To - 1
			if consumed < 0 {
				continue
			}
			if chks := chkAt[consumed]; len(chks) > 0 {
				terms := []expr.Expr{t.Guard}
				for _, ev := range chks {
					terms = append(terms, expr.Chk(ev))
				}
				t.Guard = expr.And(terms...)
			}
			if t.To == s+1 {
				if adds := addsAt[consumed]; len(adds) > 0 {
					a := monitor.Add(adds...)
					a.Sticky = true
					t.Actions = append(t.Actions, a)
				}
			}
		}
	}
}

func instrument(m *monitor.Monitor, addsAt, chkAt map[int][]string) {
	if len(addsAt) == 0 && len(chkAt) == 0 {
		return
	}
	// A source site's event is recorded once per occurrence regardless of
	// how many arrows leave it: dedupe within each tick. Across ticks,
	// multiplicity is preserved so that reversals delete one entry per
	// recorded occurrence (the paper's act7 = NOT(act1 AND act2 AND act3)
	// deletes MCmdRd three times).
	for tick, evs := range addsAt {
		addsAt[tick] = dedupeSorted(evs)
	}
	for tick, evs := range chkAt {
		chkAt[tick] = dedupeSorted(evs)
	}
	for s := 0; s < m.States; s++ {
		for i := range m.Trans[s] {
			t := &m.Trans[s][i]
			consumed := t.To - 1 // pattern element index, -1 when t.To == 0
			// Guard: consuming the destination tick requires the source
			// event to be on the scoreboard.
			if consumed >= 0 {
				if chks := chkAt[consumed]; len(chks) > 0 {
					terms := []expr.Expr{t.Guard}
					for _, ev := range chks {
						terms = append(terms, expr.Chk(ev))
					}
					t.Guard = expr.And(terms...)
				}
			}
			var actions []monitor.Action
			// Backward transition: reverse the Add_evt actions of the
			// abandoned forward path (ticks t.To .. s-1), multiplicity
			// preserved.
			if t.To <= s && s > 0 {
				var dels []string
				for tick := t.To; tick < s; tick++ {
					dels = append(dels, addsAt[tick]...)
				}
				if len(dels) > 0 {
					sort.Strings(dels)
					actions = append(actions, monitor.Del(dels...))
				}
			}
			// Forward consumption: record the source events of this tick.
			// On advance (t.To == s+1) the tick is newly consumed; on a
			// fallback the prefix's adds are carried over from the
			// abandoned attempt (see DESIGN.md §3.2), so no re-add.
			if t.To == s+1 && consumed >= 0 {
				if adds := addsAt[consumed]; len(adds) > 0 {
					actions = append(actions, monitor.Add(adds...))
				}
			}
			t.Actions = append(t.Actions, actions...)
		}
	}
}

func dedupeSorted(xs []string) []string {
	seen := make(map[string]bool, len(xs))
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// resolveArrows maps the SCESC's causality arrows to tick-indexed sites.
func resolveArrows(sc *chart.SCESC) ([]causalitySite, error) {
	labels := sc.Labels()
	sites := make([]causalitySite, 0, len(sc.Arrows))
	for _, a := range sc.Arrows {
		src, ok := labels[a.From]
		if !ok {
			return nil, fmt.Errorf("synth: chart %q: arrow source label %q not found", sc.ChartName, a.From)
		}
		dst, ok := labels[a.To]
		if !ok {
			return nil, fmt.Errorf("synth: chart %q: arrow target label %q not found", sc.ChartName, a.To)
		}
		sites = append(sites, causalitySite{
			srcEvent: src.Event, srcTick: src.Tick,
			dstEvent: dst.Event, dstTick: dst.Tick,
		})
	}
	return sites, nil
}
