package synth

import (
	"math/rand"
	"testing"

	"repro/internal/chart"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// TestGeneralParOverlayMatchesOracle: par with a non-pattern child (an
// alternative) compiles through the DFA product and agrees with the
// oracle on random traffic.
func TestGeneralParOverlayMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for round := 0; round < 15; round++ {
		// Child A: fixed two-tick pattern. Child B: alternative between
		// two two-tick patterns. The overlay holds when A and one of B's
		// branches hold simultaneously.
		c := &chart.Par{
			ChartName: "genpar",
			Children: []chart.Chart{
				exactLeaf(rng, "fixed", 2),
				&chart.Alt{Children: []chart.Chart{
					exactLeaf(rng, "b1", 2),
					exactLeaf(rng, "b2", 2),
				}},
			},
		}
		m, err := Synthesize(c, nil)
		if err != nil {
			// An empty overlay language is legitimate for random
			// branches (the children may never agree); skip those.
			continue
		}
		tr := randomTraceFor(t, c, int64(round+700), 40)
		got := acceptTicks(m, tr)
		want := semantics.MatchEndTicks(c, tr)
		if !eqTicks(got, want) {
			t.Fatalf("round %d: product par %v != oracle %v\nchart %s",
				round, got, want, chart.Describe(c))
		}
	}
}

// TestGeneralParOverlayConcrete: a deterministic instance with
// overlapping alternatives.
func TestGeneralParOverlayConcrete(t *testing.T) {
	c := &chart.Par{
		ChartName: "concrete",
		Children: []chart.Chart{
			leaf("both", "x", "y"),
			&chart.Alt{Children: []chart.Chart{
				leaf("withA", "a", "y"),
				leaf("withB", "b", "y"),
			}},
		},
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	// x&a then y: matches child 1 and branch withA.
	good := trace.NewBuilder().
		Tick().Events("x", "a").
		Tick().Events("y").
		Build()
	if !eng.Accepts(good) {
		t.Error("overlay with branch A rejected")
	}
	good2 := trace.NewBuilder().
		Tick().Events("x", "b").
		Tick().Events("y").
		Build()
	if !eng.Accepts(good2) {
		t.Error("overlay with branch B rejected")
	}
	// x alone (no a/b): child 2 has no matching branch.
	bad := trace.NewBuilder().
		Tick().Events("x").
		Tick().Events("y").
		Build()
	if eng.Accepts(bad) {
		t.Error("overlay without any branch accepted")
	}
}

// TestGeneralParEmptyOverlayRejected: children that can never agree on a
// window produce a clear error.
func TestGeneralParEmptyOverlayRejected(t *testing.T) {
	neg := &chart.SCESC{ChartName: "neg", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{{Event: "x", Negated: true}}},
	}}
	c := &chart.Par{
		ChartName: "never",
		Children: []chart.Chart{
			leaf("pos", "x"),
			&chart.Alt{Children: []chart.Chart{neg, neg2()}},
		},
	}
	if _, err := Synthesize(c, nil); err == nil {
		t.Error("contradictory general overlay accepted")
	}
}

func neg2() *chart.SCESC {
	return &chart.SCESC{ChartName: "neg2", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{{Event: "x", Negated: true}, {Event: "y"}}},
	}}
}

// TestGeneralParUnequalLengths: the overlay of a 1-tick chart with an
// alternative of 1- and 2-tick branches only admits the 1-tick branch.
func TestGeneralParUnequalLengths(t *testing.T) {
	c := &chart.Par{
		ChartName: "lens",
		Children: []chart.Chart{
			leaf("one", "x"),
			&chart.Alt{Children: []chart.Chart{
				leaf("short", "y"),
				leaf("long", "y", "z"),
			}},
		},
	}
	m, err := Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if !eng.Accepts(trace.NewBuilder().Tick().Events("x", "y").Build()) {
		t.Error("1-tick overlay rejected")
	}
	// The 2-tick branch can never align with the 1-tick child.
	two := trace.NewBuilder().
		Tick().Events("x", "y").
		Tick().Events("x", "z").
		Build()
	eng2 := monitor.NewEngine(m, nil, monitor.ModeDetect)
	eng2.Run(two)
	// Accepts at tick 0 (first overlay) and possibly tick 1 (new 1-tick
	// overlay needs y at tick 1 — absent), so exactly 1 accept.
	if eng2.Stats().Accepts != 1 {
		t.Errorf("accepts = %d, want 1", eng2.Stats().Accepts)
	}
}
