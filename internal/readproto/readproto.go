// Package readproto builds the paper's introductory example: the typical
// read protocol of Figure 1 (single clock domain) and Figure 2 (the same
// transaction split across two clock domains with cross-domain causality
// arrows). The figures show a master reading through a slave-side
// controller: the request is issued and forwarded, a ready indication
// returns, then data is delivered. The exact tick placement is
// reconstructed from the figures' event order (e1 ... e6); see
// EXPERIMENTS.md E1/E2 for the mapping.
package readproto

import (
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Event names used by the read protocol figures.
const (
	EvReq1, EvRd1, EvAddr1 = "req1", "rd1", "addr1"
	EvReq2, EvRd2, EvAddr2 = "req2", "rd2", "addr2"
	EvReq3, EvRd3, EvAddr3 = "req3", "rd3", "addr3"
	EvRdy1, EvRdy2, EvRdy3 = "rdy1", "rdy2", "rdy3"
	EvData1, EvData2       = "data1", "data2"
	EvData3                = "data3"
	EvRdyDone, EvDataDone  = "rdy_done", "data_done"
)

// SingleClockChart builds the Fig. 1 SCESC on clock clk1: the master
// issues the read (e1), the slave controller forwards it (e2), readiness
// returns with the environment's rdy_done, and data is delivered with
// data_done (e3). Causality arrows tie the issue to the forward and the
// forward to the data delivery.
func SingleClockChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "read_single_clock",
		Clock:     "clk1",
		Instances: []string{"Master", "S_CNT"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvReq1, Label: "e1", From: "Master", To: "S_CNT"},
				{Event: EvRd1, From: "Master", To: "S_CNT"},
				{Event: EvAddr1, From: "Master", To: "S_CNT"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvReq2, Label: "e2", From: "S_CNT", To: ""},
				{Event: EvRd2, From: "S_CNT", To: ""},
				{Event: EvAddr2, From: "S_CNT", To: ""},
			}},
			{Events: []chart.EventSpec{
				{Event: EvRdy1, From: "S_CNT", To: "Master"},
				{Event: EvRdyDone, Env: true},
			}},
			{Events: []chart.EventSpec{
				{Event: EvData1, Label: "e3", From: "S_CNT", To: "Master"},
				{Event: EvDataDone, Env: true},
			}},
		},
		Arrows: []chart.Arrow{
			{From: "e1", To: "e2"},
			{From: "e2", To: "e3"},
		},
	}
}

// MultiClockChart builds the Fig. 2 CESC: the clk1 half of the
// transaction (master and slave-side controller) composed asynchronously
// with the clk2 half (master-side controller and slave), with
// cross-domain causality arrows: the forwarded request e2 must precede
// the slave-side request e4, and the slave's data delivery e6 must
// precede the master-side data e3.
func MultiClockChart() *chart.Async {
	clk1 := &chart.SCESC{
		ChartName: "read_clk1",
		Clock:     "clk1",
		Instances: []string{"Master", "S_CNT"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvReq1, Label: "e1", From: "Master", To: "S_CNT"},
				{Event: EvRd1, From: "Master", To: "S_CNT"},
				{Event: EvAddr1, From: "Master", To: "S_CNT"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvReq2, Label: "e2", From: "S_CNT", To: ""},
				{Event: EvRd2, From: "S_CNT", To: ""},
				{Event: EvAddr2, From: "S_CNT", To: ""},
			}},
			{Events: []chart.EventSpec{
				{Event: EvRdy1, From: "S_CNT", To: "Master"},
				{Event: EvRdyDone, Env: true},
			}},
			{Events: []chart.EventSpec{
				{Event: EvData1, Label: "e3", From: "S_CNT", To: "Master"},
				{Event: EvDataDone, Env: true},
			}},
		},
		Arrows: []chart.Arrow{{From: "e1", To: "e2"}},
	}
	clk2 := &chart.SCESC{
		ChartName: "read_clk2",
		Clock:     "clk2",
		Instances: []string{"M_CNT", "Slave"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvReq3, Label: "e4", From: "M_CNT", To: "Slave"},
				{Event: EvRd3, From: "M_CNT", To: "Slave"},
				{Event: EvAddr3, From: "M_CNT", To: "Slave"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvRdy3, Label: "e5", From: "Slave", To: "M_CNT"},
				{Event: EvRdy2, From: "M_CNT", To: ""},
			}},
			{Events: []chart.EventSpec{
				{Event: EvData3, From: "Slave", To: "M_CNT"},
				{Event: EvData2, Label: "e6", From: "M_CNT", To: ""},
			}},
		},
		Arrows: []chart.Arrow{{From: "e4", To: "e5"}},
	}
	return &chart.Async{
		ChartName: "read_multi_clock",
		Children:  []chart.Chart{clk1, clk2},
		CrossArrows: []chart.Arrow{
			{From: "e2", To: "e4"},
			{From: "e6", To: "e3"},
		},
	}
}

// GoodSingleClockTrace produces one conforming Fig. 1 transaction with
// the given leading idle cycles.
func GoodSingleClockTrace(lead int) trace.Trace {
	b := trace.NewBuilder().Idle(lead)
	b.Tick().Events(EvReq1, EvRd1, EvAddr1)
	b.Tick().Events(EvReq2, EvRd2, EvAddr2)
	b.Tick().Events(EvRdy1, EvRdyDone)
	b.Tick().Events(EvData1, EvDataDone)
	return b.Build()
}

// System models the Fig. 2 GALS read system on a simulator: the clk1
// domain issues and forwards requests and receives data; the clk2 domain
// serves them. The domains handshake through sequence-number registers
// read with TickCtx.Peek (modelled synchronizers), so every transaction
// is served exactly once and stale responses cannot be consumed.
//
// For the chart's grid lines to land on consecutive clk1 ticks, clk1's
// period must cover the clk2 side's service time: with clk2 ticking at
// period p2 (phase p2/2-ish), serving takes three clk2 ticks after the
// forwarded request commits, so periodClk1 >= 3*periodClk2 + 2 keeps the
// response ready by clk1's next tick.
type System struct {
	// Requests counts transactions initiated.
	Requests int
	// gap controls idle clk1 ticks between transactions.
	gap int
}

// Build wires the system into a simulator with the given clock periods.
func Build(s *sim.Simulator, periodClk1, periodClk2 int64, gap int) (*System, error) {
	sys := &System{gap: gap}
	d1, err := s.AddDomain("clk1", periodClk1, 0)
	if err != nil {
		return nil, err
	}
	d2, err := s.AddDomain("clk2", periodClk2, 1)
	if err != nil {
		return nil, err
	}

	// clk1 domain: master + slave-side controller.
	d1.AddProcess(func(ctx *sim.TickCtx) {
		switch ctx.Get("phase") {
		case 0:
			if ctx.Get("wait") > 0 {
				ctx.Set("wait", ctx.Get("wait")-1)
				return
			}
			ctx.Emit(EvReq1, EvRd1, EvAddr1)
			sys.Requests++
			ctx.Set("phase", 1)
		case 1:
			ctx.Emit(EvReq2, EvRd2, EvAddr2)
			ctx.Set("req_seq", ctx.Get("req_seq")+1) // crosses to clk2
			ctx.Set("phase", 2)
		case 2:
			// The clk2 side must have completed this transaction by now
			// (period contract above); consume its response.
			if ctx.Peek("clk2", "done_seq") == ctx.Get("req_seq") {
				ctx.Emit(EvRdy1, EvRdyDone)
				ctx.Set("phase", 3)
			}
		case 3:
			ctx.Emit(EvData1, EvDataDone)
			ctx.Set("phase", 0)
			ctx.Set("wait", sys.gap)
		}
	})

	// clk2 domain: master-side controller + slave.
	d2.AddProcess(func(ctx *sim.TickCtx) {
		switch ctx.Get("phase") {
		case 0:
			if ctx.Peek("clk1", "req_seq") > ctx.Get("done_seq") {
				// A new request crossed over; serve it.
				ctx.Emit(EvReq3, EvRd3, EvAddr3)
				ctx.Set("phase", 1)
			}
		case 1:
			ctx.Emit(EvRdy3, EvRdy2)
			ctx.Set("phase", 2)
		case 2:
			ctx.Emit(EvData3, EvData2)
			ctx.Set("done_seq", ctx.Get("done_seq")+1) // crosses to clk1
			ctx.Set("phase", 0)
		}
	})
	return sys, nil
}

// GoodGlobalTrace produces a conforming Fig. 2 global trace directly
// (without the simulator). clk1 ticks with period 4, clk2 with period 2
// (phase 1), and the transaction events are placed so that each domain's
// window lands on consecutive local ticks while both cross-domain arrows
// hold on the global clock:
//
//	clk1 @0  e1 (req1,rd1,addr1)
//	clk1 @4  e2 (req2,rd2,addr2)
//	clk2 @5  e4 (req3,rd3,addr3)   — after e2
//	clk2 @7  e5 (rdy3,rdy2)
//	clk1 @8  rdy1,rdy_done
//	clk2 @9  e6 (data3,data2)
//	clk1 @12 e3 (data1,data_done)  — after e6
//
// lead prepends that many full idle periods of both clocks.
func GoodGlobalTrace(lead int) trace.GlobalTrace {
	mk := func(events ...string) event.State {
		return event.NewState().WithEvents(events...)
	}
	clk1 := trace.Trace{
		mk(EvReq1, EvRd1, EvAddr1),
		mk(EvReq2, EvRd2, EvAddr2),
		mk(EvRdy1, EvRdyDone),
		mk(EvData1, EvDataDone),
	}
	clk2 := trace.Trace{
		event.NewState(),           // @1
		event.NewState(),           // @3
		mk(EvReq3, EvRd3, EvAddr3), // @5
		mk(EvRdy3, EvRdy2),         // @7
		mk(EvData3, EvData2),       // @9
		event.NewState(),           // @11
		event.NewState(),           // @13
	}
	if lead > 0 {
		pad1 := make(trace.Trace, lead)
		pad2 := make(trace.Trace, 2*lead)
		for i := range pad1 {
			pad1[i] = event.NewState()
		}
		for i := range pad2 {
			pad2[i] = event.NewState()
		}
		clk1 = append(pad1, clk1...)
		clk2 = append(pad2, clk2...)
	}
	g, err := trace.Interleave(
		[]string{"clk1", "clk2"},
		map[string]int64{"clk1": 4, "clk2": 2},
		map[string]int64{"clk1": 0, "clk2": 1},
		map[string]trace.Trace{"clk1": clk1, "clk2": clk2},
	)
	if err != nil {
		panic(err) // static inputs; cannot fail
	}
	return g
}
