package readproto

import (
	"testing"

	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/verif"
)

func TestChartsValidate(t *testing.T) {
	if err := SingleClockChart().Validate(); err != nil {
		t.Errorf("single-clock chart: %v", err)
	}
	if err := MultiClockChart().Validate(); err != nil {
		t.Errorf("multi-clock chart: %v", err)
	}
}

// TestFig1MonitorDetectsScenario is experiment E1.
func TestFig1MonitorDetectsScenario(t *testing.T) {
	m, err := synth.Translate(SingleClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 5 {
		t.Errorf("states = %d, want 5", m.States)
	}
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if !eng.Accepts(GoodSingleClockTrace(0)) {
		t.Error("conforming transaction not detected")
	}
	if !eng.Accepts(GoodSingleClockTrace(7)) {
		t.Error("embedded transaction not detected")
	}
	// Reordered: data before ready.
	bad := GoodSingleClockTrace(0)
	bad[2], bad[3] = bad[3], bad[2]
	if eng.Accepts(bad) {
		t.Error("reordered transaction detected as conforming")
	}
}

func TestGoodSingleClockTraceMatchesOracle(t *testing.T) {
	sc := SingleClockChart()
	tr := GoodSingleClockTrace(3)
	if !semantics.ContainsScenario(sc, tr) {
		t.Error("oracle rejects the conforming trace")
	}
	ends := semantics.MatchEndTicks(sc, tr)
	if len(ends) != 1 || ends[0] != 6 {
		t.Errorf("oracle end ticks = %v, want [6]", ends)
	}
}

func TestGoodGlobalTraceCoherent(t *testing.T) {
	g := GoodGlobalTrace(2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := semantics.AsyncSatisfied(MultiClockChart(), g); !ok {
		t.Error("oracle rejects GoodGlobalTrace")
	}
}

// TestFig2SimulatedSystemSatisfiesChart is experiment E2's end-to-end
// leg: the GALS system model runs on the simulator, and the multi-clock
// monitor attached to it detects the transaction.
func TestFig2SimulatedSystemSatisfiesChart(t *testing.T) {
	s := sim.New()
	sys, err := Build(s, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := mclock.Synthesize(MultiClockChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := mclock.NewExec(mm, monitor.ModeDetect)
	verif.AttachMulti(s, ex)
	s.Record(true)
	if err := s.RunUntil(400); err != nil {
		t.Fatal(err)
	}
	if sys.Requests < 2 {
		t.Fatalf("system issued only %d requests", sys.Requests)
	}
	v := ex.Verdict()
	if v.Accepts < sys.Requests-1 {
		t.Errorf("multi-clock accepts = %d for %d requests\ncaptured:\n%v",
			v.Accepts, sys.Requests, s.Captured())
	}
	// The simulated run must also satisfy the reference semantics.
	if _, ok := semantics.AsyncSatisfied(MultiClockChart(), s.Captured()); !ok {
		t.Error("oracle rejects the simulated global trace")
	}
}
