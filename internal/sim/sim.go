// Package sim is the simulation substrate of the verification flow
// (Figure 4 of the paper): a cycle-based simulator for Globally
// Asynchronous Locally Synchronous (GALS) systems. Each clock domain
// ticks with its own period and phase; processes inside a domain execute
// synchronously in two phases (compute, then commit), communicating
// through registers; events and propositions emitted during a tick form
// the clocked trace element observed by monitors. The global clock is
// the union of all domains' ticks, matching the paper's multi-clock
// semantics.
//
// This package substitutes for the commercial HDL simulation environment
// used by the authors: monitors consume clocked valuation traces, and any
// cycle-accurate producer of such traces exercises the same code paths
// (see DESIGN.md §4).
package sim

import (
	"fmt"
	"sort"

	"repro/internal/event"
	"repro/internal/trace"
)

// Process is one synchronous process of a clock domain, run once per
// domain tick.
type Process func(ctx *TickCtx)

// Observer receives each global tick as it is produced (in global-time
// order). Monitor attachments are built on this.
type Observer interface {
	OnTick(t trace.GlobalTick)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(t trace.GlobalTick)

// OnTick implements Observer.
func (f ObserverFunc) OnTick(t trace.GlobalTick) { f(t) }

// Domain is one synchronous clock domain.
type Domain struct {
	name   string
	period int64
	phase  int64

	procs []Process
	// regs holds committed register values; next holds values written
	// this tick, committed after all processes ran.
	regs map[string]int
	next map[string]int

	tick int

	sim *Simulator
}

// Name returns the domain name (its clock).
func (d *Domain) Name() string { return d.name }

// Tick returns the number of completed ticks.
func (d *Domain) Tick() int { return d.tick }

// AddProcess registers a synchronous process; processes run in
// registration order each tick.
func (d *Domain) AddProcess(p Process) { d.procs = append(d.procs, p) }

// Reg reads a committed register value (0 if never written).
func (d *Domain) Reg(name string) int { return d.regs[name] }

// SetReg initializes a register before simulation starts.
func (d *Domain) SetReg(name string, v int) { d.regs[name] = v }

// TickCtx is the per-tick execution context handed to processes.
type TickCtx struct {
	// TickIndex is the domain-local tick number (0-based).
	TickIndex int
	// Now is the global time of this tick.
	Now int64

	d     *Domain
	state event.State
}

// Emit marks events as occurring at this tick.
func (c *TickCtx) Emit(events ...string) {
	for _, e := range events {
		c.state.Events[e] = true
	}
}

// SetProp sets a proposition's value at this tick.
func (c *TickCtx) SetProp(name string, v bool) { c.state.Props[name] = v }

// Get reads a register's committed value (what it held after the previous
// tick).
func (c *TickCtx) Get(name string) int { return c.d.regs[name] }

// Set writes a register; the value becomes visible at the next tick.
func (c *TickCtx) Set(name string, v int) { c.d.next[name] = v }

// Peek reads a committed register of another clock domain — a modelled
// synchronizer crossing. It returns 0 for unknown domains or registers.
func (c *TickCtx) Peek(domain, name string) int {
	if od, ok := c.d.sim.byName[domain]; ok {
		return od.regs[name]
	}
	return 0
}

// Simulator coordinates clock domains on the global clock.
type Simulator struct {
	domains   []*Domain
	byName    map[string]*Domain
	observers []Observer
	record    bool
	captured  trace.GlobalTrace
	now       int64
}

// New returns an empty simulator.
func New() *Simulator {
	return &Simulator{byName: make(map[string]*Domain)}
}

// AddDomain creates a clock domain ticking at times phase + k*period.
// Period must be positive; phase non-negative.
func (s *Simulator) AddDomain(name string, period, phase int64) (*Domain, error) {
	if name == "" {
		return nil, fmt.Errorf("sim: empty domain name")
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("sim: duplicate domain %q", name)
	}
	if period <= 0 {
		return nil, fmt.Errorf("sim: domain %q: period must be positive, got %d", name, period)
	}
	if phase < 0 {
		return nil, fmt.Errorf("sim: domain %q: phase must be non-negative, got %d", name, phase)
	}
	d := &Domain{
		name:   name,
		period: period,
		phase:  phase,
		regs:   make(map[string]int),
		next:   make(map[string]int),
		sim:    s,
	}
	s.domains = append(s.domains, d)
	s.byName[name] = d
	return d, nil
}

// MustAddDomain is AddDomain that panics on error.
func (s *Simulator) MustAddDomain(name string, period, phase int64) *Domain {
	d, err := s.AddDomain(name, period, phase)
	if err != nil {
		panic(err)
	}
	return d
}

// Domain returns a domain by name (nil if unknown).
func (s *Simulator) Domain(name string) *Domain { return s.byName[name] }

// Observe attaches an observer receiving every global tick.
func (s *Simulator) Observe(o Observer) { s.observers = append(s.observers, o) }

// Record enables capturing the produced global trace (off by default to
// keep long soak runs allocation-free).
func (s *Simulator) Record(on bool) { s.record = on }

// Captured returns the recorded global trace.
func (s *Simulator) Captured() trace.GlobalTrace { return s.captured }

// Now returns the current global time.
func (s *Simulator) Now() int64 { return s.now }

// RunUntil advances the global clock until (and including) global time
// `until`, executing every domain tick in global-time order. Simultaneous
// ticks execute in domain-registration order, each producing its own
// global tick entry (the paper's global clock is the union of component
// ticks).
func (s *Simulator) RunUntil(until int64) error {
	if len(s.domains) == 0 {
		return fmt.Errorf("sim: no clock domains")
	}
	for {
		d, at := s.nextTick()
		if at > until {
			s.now = until
			return nil
		}
		s.now = at
		s.execTick(d, at)
	}
}

// RunTicks advances until the named domain has completed n more ticks.
func (s *Simulator) RunTicks(domain string, n int) error {
	d, ok := s.byName[domain]
	if !ok {
		return fmt.Errorf("sim: unknown domain %q", domain)
	}
	target := d.tick + n
	for d.tick < target {
		nd, at := s.nextTick()
		s.now = at
		s.execTick(nd, at)
	}
	return nil
}

// nextTick picks the earliest pending domain tick; ties break by
// registration order.
func (s *Simulator) nextTick() (*Domain, int64) {
	var best *Domain
	var bestAt int64
	for _, d := range s.domains {
		at := d.phase + int64(d.tick)*d.period
		if best == nil || at < bestAt {
			best, bestAt = d, at
		}
	}
	return best, bestAt
}

func (s *Simulator) execTick(d *Domain, at int64) {
	ctx := &TickCtx{TickIndex: d.tick, Now: at, d: d, state: event.NewState()}
	for _, p := range d.procs {
		p(ctx)
	}
	// Commit registers.
	for k, v := range d.next {
		d.regs[k] = v
	}
	for k := range d.next {
		delete(d.next, k)
	}
	d.tick++
	gt := trace.GlobalTick{Time: at, Domain: d.name, State: ctx.state}
	if s.record {
		s.captured = append(s.captured, gt)
	}
	for _, o := range s.observers {
		o.OnTick(gt)
	}
}

// Domains lists domain names sorted for deterministic reporting.
func (s *Simulator) Domains() []string {
	out := make([]string, 0, len(s.domains))
	for _, d := range s.domains {
		out = append(out, d.name)
	}
	sort.Strings(out)
	return out
}
