package sim

import (
	"testing"

	"repro/internal/trace"
)

func TestAddDomainValidation(t *testing.T) {
	s := New()
	if _, err := s.AddDomain("", 1, 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.AddDomain("a", 0, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := s.AddDomain("a", 1, -1); err == nil {
		t.Error("negative phase accepted")
	}
	if _, err := s.AddDomain("a", 2, 0); err != nil {
		t.Fatalf("valid domain rejected: %v", err)
	}
	if _, err := s.AddDomain("a", 2, 0); err == nil {
		t.Error("duplicate domain accepted")
	}
	if s.Domain("a") == nil || s.Domain("zz") != nil {
		t.Error("Domain lookup misbehaves")
	}
}

func TestRunUntilOrdersGlobalClock(t *testing.T) {
	s := New()
	s.MustAddDomain("fast", 2, 0)
	s.MustAddDomain("slow", 5, 1)
	s.Record(true)
	var order []string
	s.Observe(ObserverFunc(func(tk trace.GlobalTick) {
		order = append(order, tk.Domain)
	}))
	if err := s.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	g := s.Captured()
	if err := g.Validate(); err != nil {
		t.Fatalf("captured trace not time-ordered: %v", err)
	}
	// fast ticks at 0,2,4,6,8,10; slow at 1,6(ties to fast? 1,6),...
	// slow at 1, 6, 11(beyond): expect fast x6, slow x2.
	fast := g.Project("fast")
	slow := g.Project("slow")
	if len(fast) != 6 || len(slow) != 2 {
		t.Errorf("fast=%d slow=%d ticks, want 6 and 2", len(fast), len(slow))
	}
	if len(order) != 8 {
		t.Errorf("observer saw %d ticks, want 8", len(order))
	}
}

func TestSimultaneousTicksBreakTiesByRegistration(t *testing.T) {
	s := New()
	s.MustAddDomain("first", 4, 0)
	s.MustAddDomain("second", 4, 0)
	s.Record(true)
	if err := s.RunUntil(4); err != nil {
		t.Fatal(err)
	}
	g := s.Captured()
	if len(g) != 4 {
		t.Fatalf("ticks = %d, want 4", len(g))
	}
	if g[0].Domain != "first" || g[1].Domain != "second" {
		t.Errorf("tie order = %s, %s", g[0].Domain, g[1].Domain)
	}
	if g[0].Time != g[1].Time {
		t.Error("simultaneous ticks have different times")
	}
}

func TestRegistersTwoPhaseCommit(t *testing.T) {
	s := New()
	d := s.MustAddDomain("clk", 1, 0)
	var sawBefore []int
	d.AddProcess(func(ctx *TickCtx) {
		sawBefore = append(sawBefore, ctx.Get("x"))
		ctx.Set("x", ctx.Get("x")+1)
	})
	// Second process in the same tick must still see the old value.
	var sawSecond []int
	d.AddProcess(func(ctx *TickCtx) {
		sawSecond = append(sawSecond, ctx.Get("x"))
	})
	if err := s.RunTicks("clk", 3); err != nil {
		t.Fatal(err)
	}
	for i, v := range sawBefore {
		if v != i {
			t.Errorf("tick %d saw %d, want %d (two-phase commit)", i, v, i)
		}
		if sawSecond[i] != v {
			t.Errorf("second process saw %d at tick %d, want %d", sawSecond[i], i, v)
		}
	}
	if d.Reg("x") != 3 {
		t.Errorf("final register = %d, want 3", d.Reg("x"))
	}
}

func TestEmitAndPropsVisibleToObservers(t *testing.T) {
	s := New()
	d := s.MustAddDomain("clk", 1, 0)
	d.AddProcess(func(ctx *TickCtx) {
		if ctx.TickIndex == 1 {
			ctx.Emit("fire")
			ctx.SetProp("armed", true)
		}
	})
	s.Record(true)
	if err := s.RunTicks("clk", 3); err != nil {
		t.Fatal(err)
	}
	tr := s.Captured().Project("clk")
	if tr[0].Event("fire") || !tr[1].Event("fire") || tr[2].Event("fire") {
		t.Error("event emission at wrong ticks")
	}
	if !tr[1].Prop("armed") {
		t.Error("prop not observed")
	}
}

func TestPeekCrossDomain(t *testing.T) {
	s := New()
	a := s.MustAddDomain("a", 2, 0)
	b := s.MustAddDomain("b", 2, 1)
	a.AddProcess(func(ctx *TickCtx) {
		ctx.Set("ping", ctx.TickIndex+1)
	})
	var peeked []int
	b.AddProcess(func(ctx *TickCtx) {
		peeked = append(peeked, ctx.Peek("a", "ping"))
		if ctx.Peek("nosuch", "ping") != 0 {
			t.Error("peek of unknown domain nonzero")
		}
	})
	if err := s.RunUntil(7); err != nil {
		t.Fatal(err)
	}
	// b ticks at 1,3,5,7; a committed ping=k after its tick at 2(k-1).
	want := []int{1, 2, 3, 4}
	for i, v := range peeked {
		if v != want[i] {
			t.Errorf("peek %d = %d, want %d", i, v, want[i])
		}
	}
}

func TestRunUntilRequiresDomains(t *testing.T) {
	if err := New().RunUntil(5); err == nil {
		t.Error("empty simulator ran")
	}
	if err := New().RunTicks("x", 1); err == nil {
		t.Error("unknown domain ran")
	}
}

func TestSetRegInitialValue(t *testing.T) {
	s := New()
	d := s.MustAddDomain("clk", 1, 0)
	d.SetReg("seed", 42)
	var got int
	d.AddProcess(func(ctx *TickCtx) { got = ctx.Get("seed") })
	if err := s.RunTicks("clk", 1); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("initial register = %d, want 42", got)
	}
	if len(s.Domains()) != 1 || s.Domains()[0] != "clk" {
		t.Errorf("Domains() = %v", s.Domains())
	}
}
