package chart

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/expr"
)

func line(events ...string) GridLine {
	var g GridLine
	for _, e := range events {
		g.Events = append(g.Events, EventSpec{Event: e})
	}
	return g
}

func simple(name, clock string, ticks ...GridLine) *SCESC {
	return &SCESC{ChartName: name, Clock: clock, Lines: ticks}
}

func TestEventSpecExprForms(t *testing.T) {
	cases := []struct {
		spec EventSpec
		want string
	}{
		{EventSpec{Event: "e"}, "e"},
		{EventSpec{Event: "e", Guard: expr.Pr("p")}, "p & e"},
		{EventSpec{Event: "e", Negated: true}, "!e"},
		{EventSpec{Event: "e", Guard: expr.Pr("p"), Negated: true}, "!(p & e)"},
	}
	for _, tc := range cases {
		if got := tc.spec.Expr().String(); got != tc.want {
			t.Errorf("%+v -> %q, want %q", tc.spec, got, tc.want)
		}
	}
}

func TestEventSpecStringAndLabel(t *testing.T) {
	s := EventSpec{Event: "req", Guard: expr.Pr("p"), Label: "e1"}
	if got := s.String(); got != "e1=p:req" {
		t.Errorf("string = %q", got)
	}
	if s.EffLabel() != "e1" {
		t.Error("label lost")
	}
	plain := EventSpec{Event: "req"}
	if plain.EffLabel() != "req" || plain.String() != "req" {
		t.Error("default label wrong")
	}
	neg := EventSpec{Event: "req", Negated: true}
	if neg.String() != "!req" {
		t.Errorf("negated string = %q", neg.String())
	}
}

func TestGridLineExpr(t *testing.T) {
	g := GridLine{
		Events: []EventSpec{{Event: "a"}, {Event: "b", Negated: true}},
		Cond:   expr.Pr("ready"),
	}
	if got := g.Expr().String(); got != "a & !b & ready" {
		t.Errorf("line expr = %q", got)
	}
	if got := (GridLine{}).Expr(); !expr.Equal(got, expr.True) {
		t.Errorf("empty line = %v", got)
	}
}

func TestSCESCValidate(t *testing.T) {
	ok := simple("ok", "clk", line("a"), line("b"))
	ok.Arrows = []Arrow{{From: "a", To: "b"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
	cases := []struct {
		name string
		sc   *SCESC
		want string
	}{
		{"no lines", simple("x", "clk"), "grid line"},
		{"no clock", simple("x", "", line("a")), "clock"},
		{"empty event", &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{{Events: []EventSpec{{}}}}}, "empty event"},
		{"dup instance", &SCESC{ChartName: "x", Clock: "c", Instances: []string{"A", "A"}, Lines: []GridLine{line("a")}}, "duplicate instance"},
		{"empty instance", &SCESC{ChartName: "x", Clock: "c", Instances: []string{""}, Lines: []GridLine{line("a")}}, "empty instance"},
		{"unknown instance", &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{{Events: []EventSpec{{Event: "a", From: "Ghost"}}}}}, "undeclared instance"},
		{"pos and neg", &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{{Events: []EventSpec{{Event: "a"}, {Event: "a", Negated: true}}}}}, "required and forbidden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestSCESCValidateArrows(t *testing.T) {
	sc := simple("x", "clk", line("a"), line("b"))
	sc.Arrows = []Arrow{{From: "zz", To: "b"}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "unknown label") {
		t.Errorf("unknown source: %v", err)
	}
	sc.Arrows = []Arrow{{From: "a", To: "zz"}}
	if err := sc.Validate(); err == nil {
		t.Error("unknown target accepted")
	}
	sc.Arrows = []Arrow{{From: "b", To: "a"}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "forward") {
		t.Errorf("backward arrow: %v", err)
	}
	same := simple("x", "clk", line("a", "b"))
	same.Arrows = []Arrow{{From: "a", To: "b"}}
	if err := same.Validate(); err == nil {
		t.Error("same-tick arrow accepted")
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	sc := &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{
		{Events: []EventSpec{{Event: "a", Label: "l"}}},
		{Events: []EventSpec{{Event: "b", Label: "l"}}},
	}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "label") {
		t.Errorf("duplicate label: %v", err)
	}
}

func TestSymbolKindConflictRejected(t *testing.T) {
	sc := &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{
		{Events: []EventSpec{{Event: "sig"}}},
		{Cond: expr.Pr("sig")},
	}}
	if err := sc.Validate(); err == nil {
		t.Error("event/prop kind conflict accepted")
	}
}

func TestLabelsSkipNegated(t *testing.T) {
	sc := &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{
		{Events: []EventSpec{{Event: "a", Label: "e1"}, {Event: "n", Negated: true}}},
		{Events: []EventSpec{{Event: "b"}}},
	}}
	ls := sc.Labels()
	if len(ls) != 2 {
		t.Fatalf("labels = %v", ls)
	}
	if ls["e1"].Tick != 0 || ls["e1"].Event != "a" {
		t.Errorf("e1 site = %+v", ls["e1"])
	}
	if _, ok := ls["n"]; ok {
		t.Error("negated event labelled")
	}
}

func compositeChart() Chart {
	a := simple("a", "clk", line("x"))
	b := simple("b", "clk", line("y"), line("z"))
	return &Seq{ChartName: "top", Children: []Chart{
		a,
		&Alt{ChartName: "alt", Children: []Chart{b, simple("c", "clk", line("w"))}},
		&Loop{ChartName: "loop", Body: simple("d", "clk", line("v")), Min: 1, Max: 2},
	}}
}

func TestCompositeValidateAndClocks(t *testing.T) {
	c := compositeChart()
	if err := c.Validate(); err != nil {
		t.Fatalf("composite invalid: %v", err)
	}
	if cl := c.Clocks(); len(cl) != 1 || cl[0] != "clk" {
		t.Errorf("clocks = %v", cl)
	}
	leaves := Leaves(c)
	if len(leaves) != 4 {
		t.Errorf("leaves = %d, want 4", len(leaves))
	}
	if got := Describe(c); got != "seq(scesc[1]@clk, alt(scesc[2]@clk, scesc[1]@clk), loop[1..2](scesc[1]@clk))" {
		t.Errorf("describe = %q", got)
	}
}

func TestValidateStructuralErrors(t *testing.T) {
	if err := (&Seq{ChartName: "s"}).Validate(); err == nil {
		t.Error("empty seq accepted")
	}
	if err := (&Alt{ChartName: "a", Children: []Chart{simple("x", "c", line("e"))}}).Validate(); err == nil {
		t.Error("single-child alt accepted")
	}
	if err := (&Par{ChartName: "p", Children: []Chart{simple("x", "c", line("e")), nil}}).Validate(); err == nil {
		t.Error("nil child accepted")
	}
	mixed := &Seq{ChartName: "m", Children: []Chart{
		simple("x", "clk1", line("e")),
		simple("y", "clk2", line("f")),
	}}
	if err := mixed.Validate(); err == nil || !strings.Contains(err.Error(), "one clock") {
		t.Errorf("mixed clocks in seq: %v", err)
	}
	if err := (&Loop{ChartName: "l", Body: simple("x", "c", line("e")), Min: -1}).Validate(); err == nil {
		t.Error("negative min accepted")
	}
	if err := (&Loop{ChartName: "l", Body: simple("x", "c", line("e")), Min: 3, Max: 2}).Validate(); err == nil {
		t.Error("max < min accepted")
	}
	if err := (&Loop{ChartName: "l"}).Validate(); err == nil {
		t.Error("nil loop body accepted")
	}
	if err := (&Implies{ChartName: "i", Trigger: simple("x", "c", line("e"))}).Validate(); err == nil {
		t.Error("nil consequent accepted")
	}
}

func TestAsyncValidate(t *testing.T) {
	l := simple("l", "clk1", line("x"))
	l.Lines[0].Events[0].Label = "e1"
	r := simple("r", "clk2", line("y"))
	r.Lines[0].Events[0].Label = "e2"
	a := &Async{ChartName: "a", Children: []Chart{l, r},
		CrossArrows: []Arrow{{From: "e1", To: "e2"}}}
	if err := a.Validate(); err != nil {
		t.Fatalf("valid async rejected: %v", err)
	}
	// Shared clock.
	bad := &Async{ChartName: "b", Children: []Chart{
		simple("l", "clk1", line("x")), simple("r", "clk1", line("y")),
	}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "share clock") {
		t.Errorf("shared clock: %v", err)
	}
	// Bad cross arrow endpoints.
	a.CrossArrows = []Arrow{{From: "zz", To: "e2"}}
	if err := a.Validate(); err == nil {
		t.Error("unknown cross source accepted")
	}
	a.CrossArrows = []Arrow{{From: "e1", To: "zz"}}
	if err := a.Validate(); err == nil {
		t.Error("unknown cross target accepted")
	}
	// Intra-child cross arrow.
	l2 := simple("l2", "clk1", line("x"), line("w"))
	l2.Lines[0].Events[0].Label = "p"
	l2.Lines[1].Events[0].Label = "q"
	a2 := &Async{ChartName: "a2", Children: []Chart{l2, r},
		CrossArrows: []Arrow{{From: "p", To: "q"}}}
	if err := a2.Validate(); err == nil || !strings.Contains(err.Error(), "within child") {
		t.Errorf("intra-child cross arrow: %v", err)
	}
}

func TestSymbolsCollection(t *testing.T) {
	sc := &SCESC{ChartName: "x", Clock: "c", Lines: []GridLine{
		{Events: []EventSpec{{Event: "b"}, {Event: "a", Guard: expr.Pr("p")}}},
	}}
	syms := Symbols(sc)
	if len(syms) != 3 {
		t.Fatalf("symbols = %v", syms)
	}
	if syms[0].Name != "a" || syms[2].Kind != event.KindProp {
		t.Errorf("symbols = %v", syms)
	}
}

func TestFindLabel(t *testing.T) {
	c := compositeChart()
	sc, site, ok := FindLabel(c, "y")
	if !ok || sc.ChartName != "b" || site.Tick != 0 {
		t.Errorf("FindLabel(y) = %v, %+v, %v", sc, site, ok)
	}
	if _, _, ok := FindLabel(c, "nothing"); ok {
		t.Error("found nonexistent label")
	}
}

func TestDescribeVariants(t *testing.T) {
	if Describe(nil) != "nil" {
		t.Error("nil describe")
	}
	u := &Loop{Body: simple("x", "c", line("e")), Min: 0, Max: Unbounded}
	if got := Describe(u); got != "loop[0..inf](scesc[1]@c)" {
		t.Errorf("unbounded describe = %q", got)
	}
	imp := &Implies{Trigger: simple("t", "c", line("a")), Consequent: simple("q", "c", line("b"))}
	if got := Describe(imp); !strings.HasPrefix(got, "implies(") {
		t.Errorf("implies describe = %q", got)
	}
	as := &Async{Children: []Chart{simple("l", "c1", line("a")), simple("r", "c2", line("b"))}}
	if got := Describe(as); !strings.HasPrefix(got, "async(") {
		t.Errorf("async describe = %q", got)
	}
	pr := &Par{Children: []Chart{simple("l", "c", line("a")), simple("r", "c", line("b"))}}
	if got := Describe(pr); !strings.HasPrefix(got, "par(") {
		t.Errorf("par describe = %q", got)
	}
}

func TestNumTicksAndNames(t *testing.T) {
	sc := simple("named", "clk", line("a"), line("b"), line("c"))
	if sc.NumTicks() != 3 {
		t.Error("tick count wrong")
	}
	charts := []Chart{
		sc,
		&Seq{ChartName: "s"}, &Par{ChartName: "p"}, &Alt{ChartName: "a"},
		&Loop{ChartName: "l"}, &Implies{ChartName: "i"}, &Async{ChartName: "y"},
	}
	wantNames := []string{"named", "s", "p", "a", "l", "i", "y"}
	for i, c := range charts {
		if c.Name() != wantNames[i] {
			t.Errorf("name %d = %q, want %q", i, c.Name(), wantNames[i])
		}
	}
}

func TestDefaultLabelAmbiguity(t *testing.T) {
	// The same unlabelled event on several ticks is fine...
	sc := simple("rep", "clk", line("beat"), line("beat"), line("beat"))
	if err := sc.Validate(); err != nil {
		t.Fatalf("repeated unlabelled event rejected: %v", err)
	}
	// ...until an arrow references the ambiguous default label.
	sc.Arrows = []Arrow{{From: "beat", To: "beat"}}
	err := sc.Validate()
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous arrow reference: %v", err)
	}
	// Explicit labels resolve it.
	sc.Lines[0].Events[0].Label = "b0"
	sc.Lines[2].Events[0].Label = "b2"
	sc.Arrows = []Arrow{{From: "b0", To: "b2"}}
	if err := sc.Validate(); err != nil {
		t.Errorf("explicitly labelled arrow rejected: %v", err)
	}
	// With explicit labels on ticks 0 and 2, the default label "beat"
	// now names only the tick-1 occurrence and is exposed again.
	ls := sc.Labels()
	if ls["beat"].Tick != 1 {
		t.Errorf("disambiguated default label wrong: %+v", ls["beat"])
	}
	if ls["b0"].Tick != 0 || ls["b2"].Tick != 2 {
		t.Errorf("explicit labels wrong: %v", ls)
	}
	// While all three are unlabelled, the default is ambiguous and
	// omitted from Labels().
	amb := simple("amb", "clk", line("beat"), line("beat"))
	if _, ok := amb.Labels()["beat"]; ok {
		t.Error("ambiguous default label exposed")
	}
}
