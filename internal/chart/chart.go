// Package chart defines the abstract syntax of CESC (Clocked Event
// Sequence Chart), the paper's visual specification language. The basic
// chart is the SCESC — a single-clocked event sequence chart whose grid
// lines are clock ticks carrying (possibly guarded, possibly negated)
// events exchanged between instances, with causality arrows between
// events. Structural constructs compose charts hierarchically:
// sequential, synchronous parallel, alternative, loop, implication, and
// asynchronous parallel (multi-clock) composition.
package chart

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/expr"
)

// Chart is a CESC specification node.
type Chart interface {
	// Name returns the chart's (possibly empty) name.
	Name() string
	// Clocks returns the clock domains the chart involves, in order of
	// first appearance.
	Clocks() []string
	// Validate checks well-formedness of the node and its children.
	Validate() error

	node()
}

// Unbounded marks a loop with no upper repetition bound.
const Unbounded = -1

// EventSpec is one event marker on a grid line: the paper's `e`, guarded
// `p:e`, or crossed-out (absent) event, drawn between two instances or on
// the chart frame (environment event).
type EventSpec struct {
	// Label names the occurrence for causality arrows. Empty labels
	// default to the event name.
	Label string
	// Event is the event symbol that occurs (or must not, if Negated).
	Event string
	// Guard is an optional proposition guard (the p of p:e); nil means
	// unguarded.
	Guard expr.Expr
	// Negated marks the required absence of the event at this tick.
	Negated bool
	// From and To are the instances between which the event is exchanged;
	// either may be empty (e.g. a local event or an environment event).
	From, To string
	// Env marks an environment event drawn on the chart frame.
	Env bool
}

// EffLabel returns the label, defaulting to the event name.
func (e EventSpec) EffLabel() string {
	if e.Label != "" {
		return e.Label
	}
	return e.Event
}

// Expr returns the grid-line contribution of this event marker, per the
// paper's extract_pattern: `e` -> e, `p:e` -> p & e, negated -> !e
// (guarded negated -> !(p & e)).
func (e EventSpec) Expr() expr.Expr {
	base := expr.Ev(e.Event)
	if e.Guard != nil {
		base = expr.And(e.Guard, base)
	}
	if e.Negated {
		return expr.Not(base)
	}
	return base
}

// String renders the marker in the paper's textual notation.
func (e EventSpec) String() string {
	s := e.Event
	if e.Guard != nil {
		s = e.Guard.String() + ":" + s
	}
	if e.Negated {
		s = "!" + s
	}
	if e.Label != "" && e.Label != e.Event {
		s = e.Label + "=" + s
	}
	return s
}

// GridLine is one clock tick of an SCESC: the set of event markers on the
// horizontal grid line plus an optional extra condition over system
// variables.
type GridLine struct {
	Events []EventSpec
	// Cond is an optional extra condition required at this tick (nil
	// means none).
	Cond expr.Expr
}

// Expr returns the conjunction of all markers and the condition; an empty
// grid line yields true (the paper's b = TRUE).
func (g GridLine) Expr() expr.Expr {
	terms := make([]expr.Expr, 0, len(g.Events)+1)
	for _, e := range g.Events {
		terms = append(terms, e.Expr())
	}
	if g.Cond != nil {
		terms = append(terms, g.Cond)
	}
	return expr.And(terms...)
}

// Arrow is a causality arrow between two labelled events.
type Arrow struct {
	From, To string
}

// SCESC is a single-clocked event sequence chart: a finite pattern of
// event occurrences over consecutive ticks of one clock.
type SCESC struct {
	ChartName string
	Clock     string
	Instances []string
	Lines     []GridLine
	Arrows    []Arrow
}

// Seq is sequential composition: children happen one after another.
type Seq struct {
	ChartName string
	Children  []Chart
}

// Par is synchronous parallel composition: children overlay on the same
// clock and window (the overlay's window language is the intersection of
// the children's window languages). Pattern-shaped children of equal
// width merge tick-by-tick; general children compose by DFA product.
type Par struct {
	ChartName string
	Children  []Chart
}

// Alt is alternative composition: exactly one child happens.
type Alt struct {
	ChartName string
	Children  []Chart
}

// Loop repeats Body between Min and Max times (Max = Unbounded allows any
// number >= Min).
type Loop struct {
	ChartName string
	Body      Chart
	Min, Max  int
}

// Implies states that whenever Trigger's scenario occurs, Consequent must
// follow within MaxDelay ticks of its completion (immediately when
// MaxDelay is 0). The deadline form extends the paper's implication
// construct to the bounded-response assertions common in bus protocols.
type Implies struct {
	ChartName           string
	Trigger, Consequent Chart
	// MaxDelay is the number of ticks the consequent's start may lag the
	// trigger's completion (0 = must start on the very next tick).
	MaxDelay int
}

// Async is asynchronous parallel composition across clock domains, with
// optional cross-domain causality arrows between labelled events of
// different children.
type Async struct {
	ChartName   string
	Children    []Chart
	CrossArrows []Arrow
}

func (*SCESC) node()   {}
func (*Seq) node()     {}
func (*Par) node()     {}
func (*Alt) node()     {}
func (*Loop) node()    {}
func (*Implies) node() {}
func (*Async) node()   {}

// Name implements Chart.
func (c *SCESC) Name() string { return c.ChartName }

// Name implements Chart.
func (c *Seq) Name() string { return c.ChartName }

// Name implements Chart.
func (c *Par) Name() string { return c.ChartName }

// Name implements Chart.
func (c *Alt) Name() string { return c.ChartName }

// Name implements Chart.
func (c *Loop) Name() string { return c.ChartName }

// Name implements Chart.
func (c *Implies) Name() string { return c.ChartName }

// Name implements Chart.
func (c *Async) Name() string { return c.ChartName }

// Clocks implements Chart.
func (c *SCESC) Clocks() []string { return []string{c.Clock} }

func childClocks(children ...Chart) []string {
	var out []string
	seen := make(map[string]bool)
	for _, ch := range children {
		if ch == nil {
			continue
		}
		for _, ck := range ch.Clocks() {
			if !seen[ck] {
				seen[ck] = true
				out = append(out, ck)
			}
		}
	}
	return out
}

// Clocks implements Chart.
func (c *Seq) Clocks() []string { return childClocks(c.Children...) }

// Clocks implements Chart.
func (c *Par) Clocks() []string { return childClocks(c.Children...) }

// Clocks implements Chart.
func (c *Alt) Clocks() []string { return childClocks(c.Children...) }

// Clocks implements Chart.
func (c *Loop) Clocks() []string { return childClocks(c.Body) }

// Clocks implements Chart.
func (c *Implies) Clocks() []string { return childClocks(c.Trigger, c.Consequent) }

// Clocks implements Chart.
func (c *Async) Clocks() []string { return childClocks(c.Children...) }

// NumTicks returns the number of grid lines (clock ticks) of the SCESC.
func (c *SCESC) NumTicks() int { return len(c.Lines) }

// LabelSite locates a labelled event within an SCESC.
type LabelSite struct {
	Tick  int
	Event string
	Spec  EventSpec
}

// Labels returns the map from effective label to site for all positive
// (non-negated) event markers of the SCESC. Ambiguous default labels
// (the same unlabelled event occurring on several ticks) are omitted —
// arrows may only reference unambiguous labels (enforced by Validate).
func (c *SCESC) Labels() map[string]LabelSite {
	out := make(map[string]LabelSite)
	dup := make(map[string]bool)
	for i, line := range c.Lines {
		for _, e := range line.Events {
			if e.Negated {
				continue
			}
			l := e.EffLabel()
			if _, seen := out[l]; seen {
				dup[l] = true
				continue
			}
			out[l] = LabelSite{Tick: i, Event: e.Event, Spec: e}
		}
	}
	for l := range dup {
		delete(out, l)
	}
	return out
}

// Symbols collects every event and proposition symbol referenced by the
// chart, name-sorted.
func Symbols(c Chart) []event.Symbol {
	var syms []event.Symbol
	walk(c, func(sc *SCESC) {
		for _, line := range sc.Lines {
			syms = append(syms, expr.SupportSymbols(line.Expr())...)
		}
	})
	sup, err := event.NewSupport(syms)
	if err != nil {
		// Symbol kind conflicts are caught by Validate; fall back to the
		// raw list so callers still see something sensible.
		return syms
	}
	return sup.Symbols()
}

// walk applies fn to every SCESC leaf of c, left to right.
func walk(c Chart, fn func(*SCESC)) {
	switch v := c.(type) {
	case nil:
	case *SCESC:
		fn(v)
	case *Seq:
		for _, ch := range v.Children {
			walk(ch, fn)
		}
	case *Par:
		for _, ch := range v.Children {
			walk(ch, fn)
		}
	case *Alt:
		for _, ch := range v.Children {
			walk(ch, fn)
		}
	case *Loop:
		walk(v.Body, fn)
	case *Implies:
		walk(v.Trigger, fn)
		walk(v.Consequent, fn)
	case *Async:
		for _, ch := range v.Children {
			walk(ch, fn)
		}
	}
}

// Leaves returns all SCESC leaves of c in left-to-right order.
func Leaves(c Chart) []*SCESC {
	var out []*SCESC
	walk(c, func(sc *SCESC) { out = append(out, sc) })
	return out
}

// FindLabel locates a labelled event anywhere in c, returning the owning
// SCESC and site.
func FindLabel(c Chart, label string) (*SCESC, LabelSite, bool) {
	var owner *SCESC
	var site LabelSite
	found := false
	walk(c, func(sc *SCESC) {
		if found {
			return
		}
		if s, ok := sc.Labels()[label]; ok {
			owner, site, found = sc, s, true
		}
	})
	return owner, site, found
}

// String gives a compact structural description, e.g.
// "seq(scesc[3]@clk1, alt(scesc[2]@clk1, scesc[1]@clk1))".
func Describe(c Chart) string {
	switch v := c.(type) {
	case nil:
		return "nil"
	case *SCESC:
		return fmt.Sprintf("scesc[%d]@%s", len(v.Lines), v.Clock)
	case *Seq:
		return "seq(" + describeList(v.Children) + ")"
	case *Par:
		return "par(" + describeList(v.Children) + ")"
	case *Alt:
		return "alt(" + describeList(v.Children) + ")"
	case *Loop:
		hi := "inf"
		if v.Max != Unbounded {
			hi = fmt.Sprint(v.Max)
		}
		return fmt.Sprintf("loop[%d..%s](%s)", v.Min, hi, Describe(v.Body))
	case *Implies:
		return "implies(" + Describe(v.Trigger) + ", " + Describe(v.Consequent) + ")"
	case *Async:
		return "async(" + describeList(v.Children) + ")"
	default:
		return fmt.Sprintf("chart(%T)", c)
	}
}

func describeList(cs []Chart) string {
	s := ""
	for i, c := range cs {
		if i > 0 {
			s += ", "
		}
		s += Describe(c)
	}
	return s
}
