package chart

import "repro/internal/expr"

// Equal reports structural equality of two charts: same node shapes, grid
// lines, markers, guards, arrows, and composition parameters. Chart names
// are ignored — the parser stamps the file-level name onto the root, so a
// print→parse round trip changes names but not structure. Marker labels
// are compared by effective label (explicit labels equal to the event
// name are the same as no label, which is how the printer renders them),
// and guards are compared by the expr package's canonical string form.
func Equal(a, b Chart) bool {
	switch va := a.(type) {
	case nil:
		return b == nil
	case *SCESC:
		vb, ok := b.(*SCESC)
		return ok && equalSCESC(va, vb)
	case *Seq:
		vb, ok := b.(*Seq)
		return ok && equalChildren(va.Children, vb.Children)
	case *Par:
		vb, ok := b.(*Par)
		return ok && equalChildren(va.Children, vb.Children)
	case *Alt:
		vb, ok := b.(*Alt)
		return ok && equalChildren(va.Children, vb.Children)
	case *Loop:
		vb, ok := b.(*Loop)
		return ok && va.Min == vb.Min && va.Max == vb.Max && Equal(va.Body, vb.Body)
	case *Implies:
		vb, ok := b.(*Implies)
		return ok && va.MaxDelay == vb.MaxDelay &&
			Equal(va.Trigger, vb.Trigger) && Equal(va.Consequent, vb.Consequent)
	case *Async:
		vb, ok := b.(*Async)
		if !ok || len(va.CrossArrows) != len(vb.CrossArrows) {
			return false
		}
		for i := range va.CrossArrows {
			if va.CrossArrows[i] != vb.CrossArrows[i] {
				return false
			}
		}
		return equalChildren(va.Children, vb.Children)
	default:
		return false
	}
}

func equalChildren(a, b []Chart) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func equalSCESC(a, b *SCESC) bool {
	if a.Clock != b.Clock || len(a.Instances) != len(b.Instances) ||
		len(a.Lines) != len(b.Lines) || len(a.Arrows) != len(b.Arrows) {
		return false
	}
	for i := range a.Instances {
		if a.Instances[i] != b.Instances[i] {
			return false
		}
	}
	for i := range a.Arrows {
		if a.Arrows[i] != b.Arrows[i] {
			return false
		}
	}
	for i := range a.Lines {
		if !equalLine(a.Lines[i], b.Lines[i]) {
			return false
		}
	}
	return true
}

func equalLine(a, b GridLine) bool {
	if len(a.Events) != len(b.Events) || !equalExpr(a.Cond, b.Cond) {
		return false
	}
	for i := range a.Events {
		if !equalSpec(a.Events[i], b.Events[i]) {
			return false
		}
	}
	return true
}

func equalSpec(a, b EventSpec) bool {
	if a.Event != b.Event || a.Negated != b.Negated || a.Env != b.Env ||
		!equalExpr(a.Guard, b.Guard) {
		return false
	}
	// The grammar only attaches labels to positive markers and endpoints
	// to non-environment ones; ignore the fields the printer cannot carry.
	if !a.Negated && a.EffLabel() != b.EffLabel() {
		return false
	}
	if !a.Env && (a.From != b.From || a.To != b.To) {
		return false
	}
	return true
}

func equalExpr(a, b expr.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return expr.Equal(a, b)
}
