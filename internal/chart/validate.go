package chart

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/expr"
)

// Validate implements Chart. An SCESC is well-formed when it has at least
// one grid line on a named clock, instance references resolve, labels of
// positive events are unique, no event is both required and forbidden at
// the same tick, and every causality arrow points strictly forward in
// time between existing labels.
func (c *SCESC) Validate() error {
	if len(c.Lines) == 0 {
		return fmt.Errorf("chart %q: SCESC must have at least one grid line", c.ChartName)
	}
	if c.Clock == "" {
		return fmt.Errorf("chart %q: SCESC must name its clock", c.ChartName)
	}
	inst := make(map[string]bool, len(c.Instances))
	for _, in := range c.Instances {
		if in == "" {
			return fmt.Errorf("chart %q: empty instance name", c.ChartName)
		}
		if inst[in] {
			return fmt.Errorf("chart %q: duplicate instance %q", c.ChartName, in)
		}
		inst[in] = true
	}
	// Explicit labels must be unique. Default labels (the event name)
	// may repeat across ticks — an event occurring several times is
	// normal — but an arrow may only reference an unambiguous label.
	explicit := make(map[string]int)
	counts := make(map[string]int)
	ticks := make(map[string]int)
	for i, line := range c.Lines {
		pos := make(map[string]bool)
		neg := make(map[string]bool)
		for _, e := range line.Events {
			if e.Event == "" {
				return fmt.Errorf("chart %q: tick %d: event marker with empty event name", c.ChartName, i)
			}
			for _, end := range []string{e.From, e.To} {
				if end != "" && !inst[end] && !e.Env {
					return fmt.Errorf("chart %q: tick %d: event %q references undeclared instance %q",
						c.ChartName, i, e.Event, end)
				}
			}
			if e.Negated {
				neg[e.Event] = true
				continue
			}
			pos[e.Event] = true
			l := e.EffLabel()
			if e.Label != "" {
				if prev, ok := explicit[l]; ok {
					return fmt.Errorf("chart %q: label %q at tick %d already used at tick %d",
						c.ChartName, l, i, prev)
				}
				explicit[l] = i
			}
			counts[l]++
			ticks[l] = i
		}
		for ev := range neg {
			if pos[ev] {
				return fmt.Errorf("chart %q: tick %d: event %q both required and forbidden",
					c.ChartName, i, ev)
			}
		}
	}
	resolve := func(label string) (int, error) {
		n, ok := counts[label]
		if !ok {
			return 0, fmt.Errorf("chart %q: arrow references unknown label %q", c.ChartName, label)
		}
		if n > 1 {
			return 0, fmt.Errorf("chart %q: arrow references ambiguous label %q (%d occurrences; give the occurrence an explicit label)",
				c.ChartName, label, n)
		}
		return ticks[label], nil
	}
	for _, a := range c.Arrows {
		ft, err := resolve(a.From)
		if err != nil {
			return err
		}
		tt, err := resolve(a.To)
		if err != nil {
			return err
		}
		if ft >= tt {
			return fmt.Errorf("chart %q: arrow %s -> %s must point forward in time (tick %d -> %d)",
				c.ChartName, a.From, a.To, ft, tt)
		}
	}
	if err := c.checkSymbolKinds(); err != nil {
		return err
	}
	return nil
}

// checkSymbolKinds rejects a name used both as event and proposition.
func (c *SCESC) checkSymbolKinds() error {
	var syms []event.Symbol
	for _, line := range c.Lines {
		syms = append(syms, expr.SupportSymbols(line.Expr())...)
	}
	if _, err := event.NewSupport(syms); err != nil {
		return fmt.Errorf("chart %q: %w", c.ChartName, err)
	}
	return nil
}

func validateChildren(name, kind string, children []Chart, min int) error {
	if len(children) < min {
		return fmt.Errorf("chart %q: %s needs at least %d children, have %d",
			name, kind, min, len(children))
	}
	for i, ch := range children {
		if ch == nil {
			return fmt.Errorf("chart %q: %s child %d is nil", name, kind, i)
		}
		if err := ch.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func requireSingleClock(name, kind string, children []Chart) error {
	clocks := childClocks(children...)
	if len(clocks) > 1 {
		return fmt.Errorf("chart %q: %s children must share one clock, found %v",
			name, kind, clocks)
	}
	return nil
}

// Validate implements Chart.
func (c *Seq) Validate() error {
	if err := validateChildren(c.ChartName, "seq", c.Children, 1); err != nil {
		return err
	}
	return requireSingleClock(c.ChartName, "seq", c.Children)
}

// Validate implements Chart. Synchronous parallel children must share the
// clock and have equal tick counts so the overlay is defined.
func (c *Par) Validate() error {
	if err := validateChildren(c.ChartName, "par", c.Children, 2); err != nil {
		return err
	}
	return requireSingleClock(c.ChartName, "par", c.Children)
}

// Validate implements Chart.
func (c *Alt) Validate() error {
	if err := validateChildren(c.ChartName, "alt", c.Children, 2); err != nil {
		return err
	}
	return requireSingleClock(c.ChartName, "alt", c.Children)
}

// Validate implements Chart.
func (c *Loop) Validate() error {
	if c.Body == nil {
		return fmt.Errorf("chart %q: loop body is nil", c.ChartName)
	}
	if err := c.Body.Validate(); err != nil {
		return err
	}
	if c.Min < 0 {
		return fmt.Errorf("chart %q: loop min %d must be >= 0", c.ChartName, c.Min)
	}
	if c.Max != Unbounded && c.Max < c.Min {
		return fmt.Errorf("chart %q: loop max %d < min %d", c.ChartName, c.Max, c.Min)
	}
	return nil
}

// Validate implements Chart.
func (c *Implies) Validate() error {
	if c.Trigger == nil || c.Consequent == nil {
		return fmt.Errorf("chart %q: implies needs trigger and consequent", c.ChartName)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("chart %q: implies max delay %d must be >= 0", c.ChartName, c.MaxDelay)
	}
	if err := c.Trigger.Validate(); err != nil {
		return err
	}
	if err := c.Consequent.Validate(); err != nil {
		return err
	}
	return requireSingleClock(c.ChartName, "implies", []Chart{c.Trigger, c.Consequent})
}

// Validate implements Chart. Asynchronous children must occupy pairwise
// disjoint clock domains; cross arrows must connect labels in different
// children.
func (c *Async) Validate() error {
	if err := validateChildren(c.ChartName, "async", c.Children, 2); err != nil {
		return err
	}
	seen := make(map[string]int)
	for i, ch := range c.Children {
		for _, ck := range ch.Clocks() {
			if j, ok := seen[ck]; ok {
				return fmt.Errorf("chart %q: async children %d and %d share clock %q",
					c.ChartName, j, i, ck)
			}
			seen[ck] = i
		}
	}
	for _, a := range c.CrossArrows {
		fi := c.childOfLabel(a.From)
		ti := c.childOfLabel(a.To)
		if fi < 0 {
			return fmt.Errorf("chart %q: cross arrow references unknown label %q", c.ChartName, a.From)
		}
		if ti < 0 {
			return fmt.Errorf("chart %q: cross arrow references unknown label %q", c.ChartName, a.To)
		}
		if fi == ti {
			return fmt.Errorf("chart %q: cross arrow %s -> %s stays within child %d; use an SCESC arrow",
				c.ChartName, a.From, a.To, fi)
		}
	}
	return nil
}

func (c *Async) childOfLabel(label string) int {
	for i, ch := range c.Children {
		if _, _, ok := FindLabel(ch, label); ok {
			return i
		}
	}
	return -1
}
