package codegen

import (
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/ocp"
	"repro/internal/readproto"
)

func TestPSLSimpleRead(t *testing.T) {
	out, err := PSL("OcpSimpleRead", ocp.SimpleReadChart())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ocpsimpleread: cover {",
		"MCmd_rd && Addr && SCmd_accept",
		"SResp && SData",
		"@(posedge ocp_clk);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PSL missing %q:\n%s", want, out)
		}
	}
	// Window causality is implied by the SERE's tick order: no Chk refs
	// leak through.
	if strings.Contains(out, "Chk_evt") {
		t.Errorf("scoreboard predicate leaked into PSL:\n%s", out)
	}
}

func TestPSLStructural(t *testing.T) {
	mk := func(name string, evs ...string) *chart.SCESC {
		sc := &chart.SCESC{ChartName: name, Clock: "clk"}
		for _, e := range evs {
			sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{{Event: e}}})
		}
		return sc
	}
	c := &chart.Seq{ChartName: "c", Children: []chart.Chart{
		mk("h", "start"),
		&chart.Alt{Children: []chart.Chart{mk("a", "hit"), mk("b", "miss", "refill")}},
		&chart.Loop{Body: mk("d", "beat"), Min: 1, Max: 4},
	}}
	out, err := PSL("Composite", c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"{start;",
		"{{hit} | {miss; refill}}",
		"{{beat}[*1:4]}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PSL missing %q:\n%s", want, out)
		}
	}
	// Unbounded loop.
	u := &chart.Loop{ChartName: "u", Body: mk("d", "beat"), Min: 2, Max: chart.Unbounded}
	out2, err := PSL("U", u)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "[*2:$]") {
		t.Errorf("unbounded repetition missing:\n%s", out2)
	}
}

func TestPSLImplication(t *testing.T) {
	mk := func(name, ev string) *chart.SCESC {
		return &chart.SCESC{ChartName: name, Clock: "clk", Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: ev}}},
		}}
	}
	c := &chart.Implies{ChartName: "i", Trigger: mk("t", "req"), Consequent: mk("q", "ack")}
	out, err := PSL("ReqAck", c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "assert always {req} |=> {ack}") {
		t.Errorf("implication form wrong:\n%s", out)
	}
}

func TestPSLParOverlay(t *testing.T) {
	mk := func(name string, evs ...string) *chart.SCESC {
		sc := &chart.SCESC{ChartName: name, Clock: "clk"}
		for _, e := range evs {
			sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{{Event: e}}})
		}
		return sc
	}
	c := &chart.Par{ChartName: "p", Children: []chart.Chart{mk("a", "x", "y"), mk("b", "u", "v")}}
	out, err := PSL("Overlay", c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{{x; y} && {u; v}}") {
		t.Errorf("overlay form wrong:\n%s", out)
	}
}

func TestPSLRejectsMultiClock(t *testing.T) {
	_, err := PSL("Gals", readproto.MultiClockChart())
	if err == nil {
		t.Fatal("multi-clock chart rendered as PSL")
	}
	if !strings.Contains(err.Error(), "multi-clock") {
		t.Errorf("error %q does not explain the limitation", err)
	}
}

func TestPSLNegatedAndGuarded(t *testing.T) {
	sc := &chart.SCESC{ChartName: "g", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{
			{Event: "req", Guard: mustProp("en")},
			{Event: "abort", Negated: true},
		}},
	}}
	out, err := PSL("G", sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "en && req") || !strings.Contains(out, "!abort") {
		t.Errorf("boolean layer wrong:\n%s", out)
	}
}
