package codegen

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
	"repro/internal/verif"
)

func impliesChart() *chart.Implies {
	leaf := func(name, ev string) *chart.SCESC {
		return &chart.SCESC{ChartName: name, Clock: "clk", Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: ev}}},
		}}
	}
	return &chart.Implies{ChartName: "imp", Trigger: leaf("t", "req"), Consequent: leaf("c", "ack")}
}

func fig6Monitor(t *testing.T) *monitor.Monitor {
	t.Helper()
	m, err := synth.Translate(ocp.SimpleReadChart(), &synth.Options{NameGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDOTOutput(t *testing.T) {
	m := fig6Monitor(t)
	dot := DOT(m)
	for _, want := range []string{
		"digraph", "rankdir=LR", "doublecircle", "n0 -> n1", "Add_evt(MCmd_rd)", "legend",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTViolationState(t *testing.T) {
	m := monitor.New("v", "clk", 3)
	m.Violation = 2
	dot := DOT(m)
	if !strings.Contains(dot, "color=red") {
		t.Error("violation state not highlighted")
	}
}

func TestGoSourceParses(t *testing.T) {
	m := fig6Monitor(t)
	src := GoSource(m, "checker", "OCPRead")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated Go does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{
		"package checker", "type OCPRead struct", "func NewOCPRead()",
		"func (m *OCPRead) Step(in map[string]bool) bool",
		`m.add("MCmd_rd")`, `m.chk("MCmd_rd")`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated Go missing %q", want)
		}
	}
	// Defaults.
	src2 := GoSource(m, "", "")
	if !strings.Contains(src2, "package checker") || !strings.Contains(src2, "type Monitor struct") {
		t.Error("default names not applied")
	}
}

// TestGoSourceBehavioralParity compiles and runs the generated checker
// with `go run` and compares its accept ticks against the engine on the
// same OCP trace.
func TestGoSourceBehavioralParity(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run parity in short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	m := fig6Monitor(t)
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 21, FaultRate: 0.3}).GenerateTrace(120)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	want := verif.EngineAcceptTicks(eng, tr)

	dir := t.TempDir()
	src := GoSource(m, "main", "Checker")
	var mainSrc strings.Builder
	mainSrc.WriteString(src)
	mainSrc.WriteString("\nfunc main() {\n\tm := NewChecker()\n\ttrace := []map[string]bool{\n")
	for _, s := range tr {
		mainSrc.WriteString("\t\t{")
		for e, v := range s.Events {
			if v {
				fmt.Fprintf(&mainSrc, "%q: true, ", e)
			}
		}
		mainSrc.WriteString("},\n")
	}
	mainSrc.WriteString("\t}\n\tfor i, in := range trace {\n\t\tif m.Step(in) {\n\t\t\tprintln(i)\n\t\t}\n\t}\n}\n")
	path := filepath.Join(dir, "main.go")
	if err := os.WriteFile(path, []byte(mainSrc.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", path)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}
	var got []int
	for _, line := range strings.Fields(string(out)) {
		n := 0
		for _, c := range line {
			n = n*10 + int(c-'0')
		}
		got = append(got, n)
	}
	if len(got) != len(want) {
		t.Fatalf("generated checker accepts %v, engine %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("generated checker accepts %v, engine %v", got, want)
		}
	}
}

func TestSystemVerilogOutput(t *testing.T) {
	m := fig6Monitor(t)
	sv := SystemVerilog(m, "ocp_read_chk")
	for _, want := range []string{
		"module ocp_read_chk", "input  logic clk", "input  logic MCmd_rd",
		"output logic accept", "always_ff @(posedge clk", "sb_MCmd_rd <= sb_MCmd_rd + 1",
		"sb_MCmd_rd <= sb_MCmd_rd - 1", "(sb_MCmd_rd > 0)", "endmodule",
	} {
		if !strings.Contains(sv, want) {
			t.Errorf("SV missing %q:\n%s", want, sv)
		}
	}
	// Default module name.
	if !strings.Contains(SystemVerilog(m, ""), "module cesc_monitor") {
		t.Error("default module name missing")
	}
}

func TestSystemVerilogViolation(t *testing.T) {
	imp, err := synth.Synthesize(impliesChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sv := SystemVerilog(imp, "imp")
	if !strings.Contains(sv, "violation <= 1'b1") {
		t.Error("violation pulse missing")
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"ok_name":  "ok_name",
		"with-dot": "with_dot",
		"9lead":    "_lead",
		"":         "monitor",
		"a.b.c":    "a_b_c",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func mustProp(name string) expr.Expr { return expr.Pr(name) }
