package codegen

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/monitor"
)

// GoSource emits a standalone, dependency-free Go source file containing
// the monitor as an executable checker: a struct with a Step method over
// a set of boolean inputs, an internal scoreboard, and accept/violation
// counters. The output compiles on its own (validated in tests via
// go/parser + go/types-free syntax check) so teams can vendor a
// synthesized checker without importing this library.
func GoSource(m *monitor.Monitor, pkg, typeName string) string {
	if pkg == "" {
		pkg = "checker"
	}
	if typeName == "" {
		typeName = "Monitor"
	}
	inputs, _ := symbols(m)
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated from CESC chart %q; DO NOT EDIT.\n", m.Name)
	fmt.Fprintf(&b, "package %s\n\n", pkg)
	fmt.Fprintf(&b, "// %s is the synthesized assertion monitor for chart %q\n", typeName, m.Name)
	fmt.Fprintf(&b, "// (clock %s, %d states).\n", m.Clock, m.States)
	fmt.Fprintf(&b, "type %s struct {\n", typeName)
	b.WriteString("\tstate      int\n")
	b.WriteString("\tsb         map[string]int\n")
	b.WriteString("\tAccepts    int\n")
	b.WriteString("\tViolations int\n")
	b.WriteString("}\n\n")
	fmt.Fprintf(&b, "// New%s returns a monitor in its initial state.\n", typeName)
	fmt.Fprintf(&b, "func New%s() *%s {\n\treturn &%s{state: %d, sb: map[string]int{}}\n}\n\n",
		typeName, typeName, typeName, m.Initial)
	fmt.Fprintf(&b, "// Inputs lists the symbols sampled each clock tick.\n")
	fmt.Fprintf(&b, "var %sInputs = []string{", typeName)
	for i, s := range inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", s.Name)
	}
	b.WriteString("}\n\n")
	b.WriteString("func (m *" + typeName + ") chk(e string) bool { return m.sb[e] > 0 }\n\n")
	b.WriteString("func (m *" + typeName + ") add(es ...string) {\n\tfor _, e := range es {\n\t\tm.sb[e]++\n\t}\n}\n\n")
	b.WriteString("func (m *" + typeName + ") del(es ...string) {\n\tfor _, e := range es {\n\t\tif m.sb[e] > 0 {\n\t\t\tm.sb[e]--\n\t\t}\n\t}\n}\n\n")
	fmt.Fprintf(&b, "// Step consumes one clock tick of input valuations and reports\n")
	fmt.Fprintf(&b, "// whether the monitored scenario completed at this tick.\n")
	fmt.Fprintf(&b, "func (m *%s) Step(in map[string]bool) bool {\n", typeName)
	b.WriteString("\taccepted := false\n")
	b.WriteString("\tswitch m.state {\n")
	for s := 0; s < m.States; s++ {
		fmt.Fprintf(&b, "\tcase %d:\n", s)
		b.WriteString("\t\tswitch {\n")
		for _, t := range m.Trans[s] {
			fmt.Fprintf(&b, "\t\tcase %s:\n", goExpr(t.Guard))
			for _, a := range t.Actions {
				fn := "add"
				if a.Kind == monitor.ActDel {
					fn = "del"
				}
				args := make([]string, len(a.Events))
				for i, e := range a.Events {
					args[i] = fmt.Sprintf("%q", e)
				}
				fmt.Fprintf(&b, "\t\t\tm.%s(%s)\n", fn, strings.Join(args, ", "))
			}
			fmt.Fprintf(&b, "\t\t\tm.state = %d\n", t.To)
			if m.IsFinal(t.To) {
				b.WriteString("\t\t\tm.Accepts++\n\t\t\taccepted = true\n")
			}
			if t.To == m.Violation {
				fmt.Fprintf(&b, "\t\t\tm.Violations++\n\t\t\tm.state = %d\n", m.Initial)
			}
		}
		fmt.Fprintf(&b, "\t\tdefault:\n\t\t\tm.state = %d\n", m.Initial)
		b.WriteString("\t\t}\n")
	}
	b.WriteString("\t}\n")
	b.WriteString("\treturn accepted\n")
	b.WriteString("}\n")
	return b.String()
}

// goExpr renders a guard as a Go boolean expression over
// `in map[string]bool` and the scoreboard.
func goExpr(e expr.Expr) string {
	switch v := e.(type) {
	case expr.EventRef:
		return fmt.Sprintf("in[%q]", v.Name)
	case expr.PropRef:
		return fmt.Sprintf("in[%q]", v.Name)
	case expr.ChkExpr:
		return fmt.Sprintf("m.chk(%q)", v.Name)
	case expr.NotExpr:
		return "!" + goParen(v.X)
	case expr.AndExpr:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = goParen(x)
		}
		return strings.Join(parts, " && ")
	case expr.OrExpr:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = goParen(x)
		}
		return strings.Join(parts, " || ")
	default:
		if expr.Equal(e, expr.True) {
			return "true"
		}
		if expr.Equal(e, expr.False) {
			return "false"
		}
		return "false /* unknown guard */"
	}
}

func goParen(e expr.Expr) string {
	switch e.(type) {
	case expr.AndExpr, expr.OrExpr:
		return "(" + goExpr(e) + ")"
	default:
		return goExpr(e)
	}
}
