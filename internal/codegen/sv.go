package codegen

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/monitor"
)

// SystemVerilog emits the monitor as a synthesizable-style SV checker
// module: one input wire per sampled symbol, a state register, counter
// registers realizing the scoreboard, and `accept`/`violation` pulse
// outputs. This is the artifact a simulation testbench would bind to the
// design under test in the paper's Figure 4 flow.
func SystemVerilog(m *monitor.Monitor, module string) string {
	if module == "" {
		module = "cesc_monitor"
	}
	inputs, sbEvents := symbols(m)
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated from CESC chart %q; do not edit.\n", m.Name)
	fmt.Fprintf(&b, "module %s (\n", sanitizeIdent(module))
	b.WriteString("  input  logic clk,\n")
	b.WriteString("  input  logic rst_n,\n")
	for _, s := range inputs {
		fmt.Fprintf(&b, "  input  logic %s,\n", sanitizeIdent(s.Name))
	}
	b.WriteString("  output logic accept,\n")
	b.WriteString("  output logic violation\n")
	b.WriteString(");\n\n")
	width := 1
	for (1 << width) < m.States {
		width++
	}
	fmt.Fprintf(&b, "  logic [%d:0] state;\n", width-1)
	for _, e := range sbEvents {
		fmt.Fprintf(&b, "  int sb_%s;\n", sanitizeIdent(e))
	}
	b.WriteString("\n  always_ff @(posedge clk or negedge rst_n) begin\n")
	b.WriteString("    if (!rst_n) begin\n")
	fmt.Fprintf(&b, "      state <= %d;\n", m.Initial)
	b.WriteString("      accept <= 1'b0;\n      violation <= 1'b0;\n")
	for _, e := range sbEvents {
		fmt.Fprintf(&b, "      sb_%s <= 0;\n", sanitizeIdent(e))
	}
	b.WriteString("    end else begin\n")
	b.WriteString("      accept <= 1'b0;\n      violation <= 1'b0;\n")
	b.WriteString("      unique case (state)\n")
	for s := 0; s < m.States; s++ {
		fmt.Fprintf(&b, "        %d: begin\n", s)
		first := true
		for _, t := range m.Trans[s] {
			kw := "else if"
			if first {
				kw = "if"
				first = false
			}
			fmt.Fprintf(&b, "          %s (%s) begin\n", kw, svExpr(t.Guard))
			for _, a := range t.Actions {
				for _, e := range a.Events {
					op := "+"
					if a.Kind == monitor.ActDel {
						op = "-"
					}
					fmt.Fprintf(&b, "            sb_%s <= sb_%s %s 1;\n",
						sanitizeIdent(e), sanitizeIdent(e), op)
				}
			}
			target := t.To
			note := ""
			if t.To == m.Violation {
				target = m.Initial
				note = "            violation <= 1'b1;\n"
			}
			if m.IsFinal(t.To) {
				note += "            accept <= 1'b1;\n"
			}
			b.WriteString(note)
			fmt.Fprintf(&b, "            state <= %d;\n", target)
			b.WriteString("          end\n")
		}
		if first {
			fmt.Fprintf(&b, "          state <= %d;\n", m.Initial)
		} else {
			fmt.Fprintf(&b, "          else state <= %d;\n", m.Initial)
		}
		b.WriteString("        end\n")
	}
	fmt.Fprintf(&b, "        default: state <= %d;\n", m.Initial)
	b.WriteString("      endcase\n")
	b.WriteString("    end\n  end\n\nendmodule\n")
	return b.String()
}

// svExpr renders a guard as a SystemVerilog boolean expression.
func svExpr(e expr.Expr) string {
	switch v := e.(type) {
	case expr.EventRef:
		return sanitizeIdent(v.Name)
	case expr.PropRef:
		return sanitizeIdent(v.Name)
	case expr.ChkExpr:
		return fmt.Sprintf("(sb_%s > 0)", sanitizeIdent(v.Name))
	case expr.NotExpr:
		return "!" + svParen(v.X)
	case expr.AndExpr:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = svParen(x)
		}
		return strings.Join(parts, " && ")
	case expr.OrExpr:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = svParen(x)
		}
		return strings.Join(parts, " || ")
	default:
		if expr.Equal(e, expr.True) {
			return "1'b1"
		}
		return "1'b0"
	}
}

func svParen(e expr.Expr) string {
	switch e.(type) {
	case expr.AndExpr, expr.OrExpr:
		return "(" + svExpr(e) + ")"
	default:
		return svExpr(e)
	}
}
