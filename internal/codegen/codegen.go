// Package codegen emits synthesized monitors in downstream formats: DOT
// graphs for documentation, standalone Go checker source, and a
// SystemVerilog checker module in the style of the simulation monitors
// the paper's flow would plug into an HDL testbench. This closes the
// "automated synthesis of checkers and monitors" box of Figure 4.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/monitor"
)

// DOT renders the monitor as a Graphviz digraph. Guard legend names are
// used when present; accepting states are double circles, the violation
// state is a red box.
func DOT(m *monitor.Monitor) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeIdent(m.Name))
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle];\n")
	for s := 0; s < m.States; s++ {
		attrs := []string{fmt.Sprintf("label=\"%d\"", s)}
		if m.IsFinal(s) {
			attrs = append(attrs, "shape=doublecircle")
		}
		if s == m.Violation {
			attrs = append(attrs, "shape=box", "color=red")
		}
		if s == m.Initial {
			attrs = append(attrs, "style=bold")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", s, strings.Join(attrs, ", "))
	}
	for s := 0; s < m.States; s++ {
		for _, t := range m.Trans[s] {
			label := guardLabel(m, t.Guard)
			for _, a := range t.Actions {
				label += " / " + a.String()
			}
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", s, t.To, label)
		}
	}
	if legend := m.GuardLegend(); len(legend) > 0 {
		fmt.Fprintf(&b, "  legend [shape=note, label=%q];\n", strings.Join(legend, "\\n"))
	}
	b.WriteString("}\n")
	return b.String()
}

func guardLabel(m *monitor.Monitor, g expr.Expr) string {
	if name, ok := m.GuardNames[g.String()]; ok {
		return name
	}
	return g.String()
}

func sanitizeIdent(s string) string {
	if s == "" {
		return "monitor"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z'):
			b.WriteRune(r)
		case '0' <= r && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// symbols gathers the monitor's input symbols plus scoreboard events.
func symbols(m *monitor.Monitor) (inputs []event.Symbol, sbEvents []string) {
	sup, err := m.Support()
	if err == nil {
		inputs = sup.Symbols()
	}
	seen := map[string]bool{}
	for _, ts := range m.Trans {
		for _, t := range ts {
			for _, e := range expr.ChkRefs(t.Guard) {
				seen[e] = true
			}
			for _, a := range t.Actions {
				for _, e := range a.Events {
					seen[e] = true
				}
			}
		}
	}
	for e := range seen {
		sbEvents = append(sbEvents, e)
	}
	sort.Strings(sbEvents)
	return inputs, sbEvents
}
