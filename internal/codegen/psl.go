package codegen

import (
	"fmt"
	"strings"

	"repro/internal/chart"
	"repro/internal/expr"
)

// PSL renders a chart as a PSL (IEEE 1850 / Accellera Sugar) property —
// the textual-temporal route the paper contrasts CESC against. Window
// languages become SEREs (Sequential Extended Regular Expressions):
//
//	SCESC             {e0; e1; ...}        one boolean per clock tick
//	seq               concatenation        {A; B}
//	alt               SERE alternation     {A | B}
//	par               length-matched and   {A && B}
//	loop [m,n]        repetition           {A}[*m:n]  ([*m:$] unbounded)
//	implies           suffix implication   always {T} |=> {C}
//
// Non-implication charts are wrapped as `cover` directives (scenario
// detection); implications become `assert always` (the checker form).
//
// Asynchronous (multi-clock) charts are rejected: PSL properties are
// clocked by a single clock, which is precisely the gap CESC's
// asynchronous composition fills (paper, Section 2).
func PSL(name string, c chart.Chart) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	switch v := c.(type) {
	case *chart.Async:
		return "", fmt.Errorf("codegen: chart %q is multi-clock; PSL has no asynchronous composition (use the CESC monitor)", name)
	case *chart.Implies:
		trig, err := sere(v.Trigger)
		if err != nil {
			return "", err
		}
		cons, err := sere(v.Consequent)
		if err != nil {
			return "", err
		}
		if v.MaxDelay > 0 {
			cons = fmt.Sprintf("{[*0:%d]; %s}", v.MaxDelay, cons)
		}
		return fmt.Sprintf("// generated from CESC chart %q\n%s: assert always %s |=> %s @(posedge %s);\n",
			name, pslIdent(name), trig, cons, clockName(c)), nil
	default:
		s, err := sere(c)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("// generated from CESC chart %q\n%s: cover %s @(posedge %s);\n",
			name, pslIdent(name), s, clockName(c)), nil
	}
}

func clockName(c chart.Chart) string {
	if cks := c.Clocks(); len(cks) > 0 {
		return cks[0]
	}
	return "clk"
}

// sere builds the SERE for a window-language chart.
func sere(c chart.Chart) (string, error) {
	switch v := c.(type) {
	case *chart.SCESC:
		terms := make([]string, len(v.Lines))
		for i, line := range v.Lines {
			terms[i] = pslBool(line.Expr())
		}
		return "{" + strings.Join(terms, "; ") + "}", nil
	case *chart.Seq:
		parts := make([]string, 0, len(v.Children))
		for _, ch := range v.Children {
			s, err := sere(ch)
			if err != nil {
				return "", err
			}
			// Inline plain element lists; keep grouped SEREs braced.
			if _, plain := ch.(*chart.SCESC); plain {
				s = strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
			}
			parts = append(parts, s)
		}
		return "{" + strings.Join(parts, "; ") + "}", nil
	case *chart.Alt:
		parts := make([]string, 0, len(v.Children))
		for _, ch := range v.Children {
			s, err := sere(ch)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		return "{" + strings.Join(parts, " | ") + "}", nil
	case *chart.Par:
		parts := make([]string, 0, len(v.Children))
		for _, ch := range v.Children {
			s, err := sere(ch)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		return "{" + strings.Join(parts, " && ") + "}", nil
	case *chart.Loop:
		body, err := sere(v.Body)
		if err != nil {
			return "", err
		}
		hi := "$"
		if v.Max != chart.Unbounded {
			hi = fmt.Sprint(v.Max)
		}
		return fmt.Sprintf("{%s[*%d:%s]}", body, v.Min, hi), nil
	case *chart.Implies:
		return "", fmt.Errorf("codegen: implication cannot nest inside a SERE; restructure the chart")
	case *chart.Async:
		return "", fmt.Errorf("codegen: asynchronous composition cannot appear inside a SERE")
	default:
		return "", fmt.Errorf("codegen: unsupported chart node %T", c)
	}
}

// pslBool renders a guard expression in PSL's boolean layer.
func pslBool(e expr.Expr) string {
	switch v := e.(type) {
	case expr.EventRef:
		return v.Name
	case expr.PropRef:
		return v.Name
	case expr.ChkExpr:
		// Scoreboard predicates have no PSL counterpart; the causality
		// they check is implied by the SERE's tick ordering within one
		// window.
		return "1'b1"
	case expr.NotExpr:
		return "!" + pslParen(v.X)
	case expr.AndExpr:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = pslParen(x)
		}
		return strings.Join(parts, " && ")
	case expr.OrExpr:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = pslParen(x)
		}
		return strings.Join(parts, " || ")
	default:
		if expr.Equal(e, expr.True) {
			return "1'b1"
		}
		return "1'b0"
	}
}

func pslParen(e expr.Expr) string {
	switch e.(type) {
	case expr.AndExpr, expr.OrExpr:
		return "(" + pslBool(e) + ")"
	default:
		return pslBool(e)
	}
}

func pslIdent(s string) string { return sanitizeIdent(strings.ToLower(s)) }
