package conformance

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/verif"
)

// checkChart runs the whole differential stack for one (chart, trace)
// pair and returns a non-nil divergence when any two parties disagree:
//
//   - the three execution tiers (interpreted engine, compiled
//     guard-program engine via both the map and packed step paths, and —
//     when the monitor's shape admits it — the precomputed transition
//     table) must produce identical accept-tick sequences;
//   - the semantics oracle sandwiches the monitor per chart class:
//     pattern-shaped charts get the exact-matcher equality and the
//     history-abstraction subset bounds, NFA-shaped charts get exact
//     equality, implications get the first-match subset bound.
func checkChart(c chart.Chart, tr trace.Trace) *Divergence {
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		return &Divergence{Kind: "synth-error", Detail: err.Error()}
	}

	interp := acceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect).Step, tr)

	prog, err := monitor.CompileProgram(m)
	if err != nil {
		return &Divergence{Kind: "program-compile-error", Detail: err.Error()}
	}
	progTicks := acceptTicks(prog.NewEngine(nil, monitor.ModeDetect).Step, tr)
	if !sameInts(interp, progTicks) {
		return &Divergence{Kind: "tier-program",
			Detail: fmt.Sprintf("interp accepts %v, program accepts %v", interp, progTicks)}
	}

	packedEng := prog.NewEngine(nil, monitor.ModeDetect)
	sup := prog.Support()
	packed := acceptTicksResult(func(s event.State) monitor.StepResult {
		return packedEng.StepPacked(sup.Pack(s))
	}, tr)
	if !sameInts(interp, packed) {
		return &Divergence{Kind: "tier-packed",
			Detail: fmt.Sprintf("interp accepts %v, packed accepts %v", interp, packed)}
	}

	// The transition table cannot reverse pending scoreboard actions on a
	// hard reset the way the engines do, so it is only comparable when no
	// hard reset can occur (total monitor) or no actions exist to reverse.
	total, _ := m.Total()
	if total || !m.HasActions() {
		if tbl, err := monitor.Compile(m); err == nil {
			tblTicks := acceptTicks(func(s event.State) monitor.StepResult {
				if tbl.Step(s) {
					return monitor.StepResult{Outcome: monitor.Accepted}
				}
				return monitor.StepResult{}
			}, tr)
			if !sameInts(interp, tblTicks) {
				return &Divergence{Kind: "tier-table",
					Detail: fmt.Sprintf("interp accepts %v, table accepts %v", interp, tblTicks)}
			}
		}
	}

	if d := laneCheck(m, tr, interp, total || !m.HasActions()); d != nil {
		return d
	}

	// The tiered detector must agree with whichever tier it selected.
	if det, err := verif.NewDetector(m); err == nil {
		detTicks := acceptTicks(func(s event.State) monitor.StepResult {
			if det.StepDetect(s) {
				return monitor.StepResult{Outcome: monitor.Accepted}
			}
			return monitor.StepResult{}
		}, tr)
		skipDet := det.Tier() == verif.TierTable && !total && m.HasActions()
		if !skipDet && !sameInts(interp, detTicks) {
			return &Divergence{Kind: "tier-detector",
				Detail: fmt.Sprintf("interp accepts %v, %s detector accepts %v", interp, det.Tier(), detTicks)}
		}
	}

	return oracleCheck(c, m, tr, interp)
}

// oracleCheck sandwiches the monitor's accept ticks between what the
// reference semantics requires and permits, with bounds chosen per chart
// class (see package comment).
func oracleCheck(c chart.Chart, m *monitor.Monitor, tr trace.Trace, accepts []int) *Divergence {
	o := semantics.NewOracle(tr)
	want := o.EndTicks(c)

	if imp, ok := c.(*chart.Implies); ok {
		// The implication monitor commits to the first consequent start
		// (first-match semantics), so it accepts a subset of the oracle's
		// end ticks; every accept must still be semantically justified.
		if d := subsetOf(accepts, want, "implies-unsound"); d != nil {
			return d
		}
		_ = imp
		return nil
	}

	if p, ok := synth.WindowPattern(c); ok {
		// Pattern-shaped: the reference matcher is exact by construction
		// and must reproduce the oracle end ticks verbatim.
		exact := exactTicks(p, tr)
		if !sameInts(exact, want) {
			return &Divergence{Kind: "exact-vs-oracle",
				Detail: fmt.Sprintf("exact matcher ends %v, oracle ends %v", exact, want)}
		}
		// The default history abstraction (HistImplication) is sound:
		// every accept corresponds to a real window end.
		if d := subsetOf(accepts, want, "pattern-unsound"); d != nil {
			return d
		}
		orth, orthErr := p.Orthogonal()
		// On orthogonal patterns the abstraction is exact; causality Chk
		// guards can only act within a committed window there, so arrows
		// do not perturb acceptance.
		if orthErr == nil && orth && arrowFree(c) {
			if !sameInts(accepts, want) {
				return &Divergence{Kind: "orthogonal-incomplete",
					Detail: fmt.Sprintf("monitor accepts %v, oracle ends %v", accepts, want)}
			}
		}
		// The satisfiability abstraction over-approximates guard histories,
		// but the engine underneath is still deterministic first-match: a
		// tick that both ends one window and starts the next is consumed by
		// the finishing window, so on non-orthogonal patterns a real match
		// sharing its first tick with a completed window is missed (see
		// testdata/regressions/sat-incomplete-s9-c27). Coverage of every
		// oracle end is therefore only guaranteed on orthogonal, arrow-free
		// patterns (arrows because Chk guards can shrink the accept set
		// independently of the history abstraction).
		if orthErr == nil && orth && arrowFree(c) {
			msat, err := synth.Synthesize(c, &synth.Options{History: synth.HistSatisfiable})
			if err != nil {
				return &Divergence{Kind: "synth-sat-error", Detail: err.Error()}
			}
			sat := acceptTicks(monitor.NewEngine(msat, nil, monitor.ModeDetect).Step, tr)
			if d := subsetOf(want, sat, "sat-incomplete"); d != nil {
				d.Detail = fmt.Sprintf("oracle ends %v not covered by HistSatisfiable accepts %v", want, sat)
				return d
			}
		}
		return nil
	}

	// NFA-shaped (contains Alt/Loop or a non-mergeable Par): subset
	// construction tracks every live window, so acceptance is exact.
	if !sameInts(accepts, want) {
		return &Divergence{Kind: "nfa-vs-oracle",
			Detail: fmt.Sprintf("monitor accepts %v, oracle ends %v", accepts, want)}
	}
	return nil
}

// laneCheck cross-checks the bit-sliced lane tier. A full LaneBank fed
// the trace through uniform valuations must agree lane-for-lane — on
// accept bit, violation bit, and state — with 64 per-session Compiled
// cursors at every tick (that parity is unconditional: lanes mirror the
// full chk-bit and action-counter semantics of the table). Lane accept
// ticks are additionally compared against the interpreted engine under
// the same gate as the table tier (comparable), since only then can the
// table itself be trusted against the engines. A second bank joins its
// lanes staggered, one per tick, so mid-stream membership churn is
// exercised against cursors created at the same offsets.
func laneCheck(m *monitor.Monitor, tr trace.Trace, interp []int, comparable bool) *Divergence {
	tbl, err := monitor.CompileTable(m)
	if err != nil {
		return nil // shape not table-compilable; the other tiers cover it
	}
	sup := tbl.Support()

	bank := monitor.NewLaneBank(tbl)
	refs := make([]*monitor.Compiled, 0, monitor.MaxLanes)
	for i := 0; i < monitor.MaxLanes; i++ {
		if _, ok := bank.Join(); !ok {
			return &Divergence{Kind: "lane-join",
				Detail: fmt.Sprintf("fresh bank refused lane %d", i)}
		}
		refs = append(refs, tbl.NewInstance())
	}
	var laneAccepts []int
	for tick, st := range tr {
		acceptMask, violMask := bank.StepUniform(uint64(sup.Valuation(st)))
		for l, c := range refs {
			prevViol := c.Violations()
			accepted := c.Step(st)
			if got := acceptMask>>uint(l)&1 == 1; got != accepted {
				return &Divergence{Kind: "lane-vs-compiled",
					Detail: fmt.Sprintf("tick %d lane %d: lane accept %v, compiled %v", tick, l, got, accepted)}
			}
			if got := violMask>>uint(l)&1 == 1; got != (c.Violations() > prevViol) {
				return &Divergence{Kind: "lane-vs-compiled",
					Detail: fmt.Sprintf("tick %d lane %d: violation bit mismatch", tick, l)}
			}
			if bank.State(l) != c.State() {
				return &Divergence{Kind: "lane-vs-compiled",
					Detail: fmt.Sprintf("tick %d lane %d: state %d, compiled %d", tick, l, bank.State(l), c.State())}
			}
		}
		if acceptMask&1 == 1 {
			laneAccepts = append(laneAccepts, tick)
		}
	}
	if comparable && !sameInts(interp, laneAccepts) {
		return &Divergence{Kind: "tier-lane",
			Detail: fmt.Sprintf("interp accepts %v, lane accepts %v", interp, laneAccepts)}
	}

	stag := monitor.NewLaneBank(tbl)
	joined := make([]*monitor.Compiled, 0, monitor.MaxLanes)
	for tick, st := range tr {
		if tick < monitor.MaxLanes {
			if _, ok := stag.Join(); !ok {
				return &Divergence{Kind: "lane-join",
					Detail: fmt.Sprintf("staggered bank refused lane %d", tick)}
			}
			joined = append(joined, tbl.NewInstance())
		}
		acceptMask, _ := stag.StepUniform(uint64(sup.Valuation(st)))
		for l, c := range joined {
			accepted := c.Step(st)
			if got := acceptMask>>uint(l)&1 == 1; got != accepted {
				return &Divergence{Kind: "lane-staggered",
					Detail: fmt.Sprintf("tick %d lane %d (joined at %d): lane accept %v, compiled %v",
						tick, l, l, got, accepted)}
			}
		}
	}
	return nil
}

// acceptTicks runs one engine step function over the trace and returns
// the 0-based ticks at which it accepted.
func acceptTicks(step func(event.State) monitor.StepResult, tr trace.Trace) []int {
	return acceptTicksResult(step, tr)
}

func acceptTicksResult(step func(event.State) monitor.StepResult, tr trace.Trace) []int {
	var out []int
	for i, s := range tr {
		if step(s).Outcome == monitor.Accepted {
			out = append(out, i)
		}
	}
	return out
}

// exactTicks runs the exact pattern matcher and returns the ticks where
// some window ends.
func exactTicks(p synth.Pattern, tr trace.Trace) []int {
	return synth.NewExactMatcher(p).MatchesIn(tr)
}

// arrowFree reports whether no SCESC leaf of c declares causality
// arrows.
func arrowFree(c chart.Chart) bool {
	for _, sc := range chart.Leaves(c) {
		if len(sc.Arrows) > 0 {
			return false
		}
	}
	return true
}

// subsetOf returns a divergence when some element of sub is missing from
// super.
func subsetOf(sub, super []int, kind string) *Divergence {
	in := make(map[int]bool, len(super))
	for _, t := range super {
		in[t] = true
	}
	for _, t := range sub {
		if !in[t] {
			return &Divergence{Kind: kind,
				Detail: fmt.Sprintf("tick %d accepted but not justified (accepts %v, reference %v)", t, sub, super)}
		}
	}
	return nil
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
