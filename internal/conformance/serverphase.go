package conformance

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/chart"
	"repro/internal/client"
	"repro/internal/event"
	"repro/internal/faultinject"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/synth"
	"repro/internal/trace"
)

// serverBatchTicks is the NDJSON batch size of the server phase — small,
// so crash-at-every-batch recovery runs exercise many power cuts per
// trace.
const serverBatchTicks = 7

// serverCheck rounds one (chart, trace) pair through a live cescd
// instance and compares the server-side accept ticks against direct
// local stepping, over both ingest formats:
//
//   - an NDJSON session streamed in small batches through the retrying
//     client, with injected response-path faults so retries and ?seq
//     dedup are on the differential path every run;
//   - a VCD session fed the same trace as a Value Change Dump.
//
// With doRecover set the server is power-cut (Crash + restart on the
// same WAL directory) after every NDJSON batch, so the comparison also
// proves journal replay equivalence. With doPage set every session is
// paged out to its WAL checkpoint between batches, so each batch lands
// on a cold session and forces a revival — paging must be transparent,
// verdict-for-verdict. Returns the divergences, the number of
// recoveries and page-outs performed, and a harness error.
func serverCheck(c chart.Chart, tr trace.Trace, doRecover, doPage bool) ([]*Divergence, int, int, error) {
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		// checkChart reports synthesis failures; nothing to round-trip.
		return nil, 0, 0, nil
	}
	want := acceptTicks(monitor.NewEngine(m, nil, monitor.ModeDetect).Step, tr)
	src := parser.Print("Spec", c)

	var walDir string
	if doRecover || doPage {
		walDir, err = os.MkdirTemp("", "cescfuzz-wal-")
		if err != nil {
			return nil, 0, 0, err
		}
		defer os.RemoveAll(walDir)
	}
	newServer := func() (*server.Server, *httptest.Server, error) {
		// The fault plane is rebuilt per incarnation: two transient
		// response-path failures per run keep the client's retry and the
		// server's dedup watermark under test without ever losing data.
		faults := faultinject.New(1).Add(faultinject.Rule{
			Point: "server.ingest.respond", Kind: faultinject.KindError,
			After: 1, Every: 3, Count: 2,
		})
		cfg := server.Config{Shards: 2, QueueDepth: 16, Faults: faults}
		if walDir != "" {
			cfg.WALDir = walDir
			cfg.SnapshotEvery = 3
		}
		s, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if _, err := s.LoadSpecSource(src); err != nil {
			s.Close()
			return nil, nil, fmt.Errorf("loading generated spec: %w", err)
		}
		return s, httptest.NewServer(s.Handler()), nil
	}

	s, ts, err := newServer()
	if err != nil {
		return nil, 0, 0, err
	}
	closed := false
	defer func() {
		if !closed {
			ts.Close()
			s.Close()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	newClient := func(base string) *client.Client {
		return client.New(client.Options{
			BaseURL: base, MaxAttempts: 6,
			BackoffBase: time.Millisecond, BackoffCap: 10 * time.Millisecond, Seed: 1,
		})
	}
	cl := newClient(ts.URL)
	sess, err := cl.CreateSession(ctx, "detect", "Spec")
	if err != nil {
		return nil, 0, 0, err
	}
	vcdSess, err := cl.CreateSession(ctx, "detect", "Spec")
	if err != nil {
		return nil, 0, 0, err
	}
	vcdID := vcdSess.ID

	recoveries, pageouts := 0, 0
	batches := uint64(0)
	for at := 0; at < len(tr); at += serverBatchTicks {
		end := at + serverBatchTicks
		if end > len(tr) {
			end = len(tr)
		}
		batch := make([]server.StateJSON, 0, end-at)
		for _, st := range tr[at:end] {
			batch = append(batch, server.EncodeState(st))
		}
		if _, err := sess.SendTicks(ctx, batch, true); err != nil {
			return nil, recoveries, pageouts, fmt.Errorf("sending batch at %d: %w", at, err)
		}
		batches++
		if doPage {
			// Park both sessions cold; the next touch must revive them
			// with byte-identical state.
			for _, id := range []string{sess.ID, vcdID} {
				if err := s.PageOutSession(id); err != nil {
					return nil, recoveries, pageouts, fmt.Errorf("paging out %s at %d: %w", id, at, err)
				}
				pageouts++
			}
		}
		if doRecover && end < len(tr) {
			id := sess.ID
			s.Crash()
			ts.Close()
			s, ts, err = newServer()
			if err != nil {
				return nil, recoveries, pageouts, fmt.Errorf("restart after crash at %d: %w", at, err)
			}
			cl = newClient(ts.URL)
			sess = cl.Resume(id, batches+1)
			recoveries++
		}
	}

	var out []*Divergence
	kind := "server-ndjson"
	switch {
	case doRecover && doPage:
		kind = "recovery-paging"
	case doRecover:
		kind = "recovery"
	case doPage:
		kind = "paging"
	}
	got, err := settledAcceptTicks(ctx, sess, len(tr))
	if err != nil {
		return nil, recoveries, pageouts, err
	}
	if !sameInts(want, got) {
		out = append(out, &Divergence{Kind: kind,
			Detail: fmt.Sprintf("local accepts %v, server accepts %v (recoveries %d)", want, got, recoveries)})
	}

	// The VCD path: one upload, synchronous, after any recovery dance —
	// the recovered server must still serve the (journal-recovered) VCD
	// session. Recovery keeps the session's monitor state, so ticks
	// streamed before a crash are never replayed here: the whole dump
	// goes to a session that saw no NDJSON traffic.
	var vcd bytes.Buffer
	if err := trace.WriteVCD(&vcd, "fuzz", tr); err != nil {
		return out, recoveries, pageouts, err
	}
	url := fmt.Sprintf("%s/sessions/%s/vcd?props=%s", ts.URL, vcdID, propsParam(c))
	resp, err := http.Post(url, "text/plain", &vcd)
	if err != nil {
		return out, recoveries, pageouts, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, recoveries, pageouts, fmt.Errorf("vcd upload: status %d", resp.StatusCode)
	}
	vgot, err := settledAcceptTicks(ctx, cl.Resume(vcdID, 0), len(tr))
	if err != nil {
		return out, recoveries, pageouts, err
	}
	if !sameInts(want, vgot) {
		out = append(out, &Divergence{Kind: "server-vcd",
			Detail: fmt.Sprintf("local accepts %v, vcd-ingested accepts %v", want, vgot)})
	}

	ts.Close()
	s.Close()
	closed = true
	return out, recoveries, pageouts, nil
}

// settledAcceptTicks polls the session until every tick has been
// processed (dedup-retried batches can be acknowledged before the shard
// applies them), then returns its accept ticks.
func settledAcceptTicks(ctx context.Context, sess *client.Session, steps int) ([]int, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := sess.Verdicts(ctx)
		if err != nil {
			return nil, err
		}
		if len(v.Monitors) != 1 {
			return nil, fmt.Errorf("expected 1 monitor verdict, got %d", len(v.Monitors))
		}
		mv := v.Monitors[0]
		if mv.Quarantined {
			return nil, fmt.Errorf("monitor quarantined: %s", mv.QuarantineReason)
		}
		if mv.Steps >= steps {
			return mv.AcceptTicks, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("session stalled at %d/%d steps", mv.Steps, steps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// propsParam lists the chart's proposition symbols for the VCD ingest
// query (all other signals default to events).
func propsParam(c chart.Chart) string {
	var names []string
	for _, s := range chart.Symbols(c) {
		if s.Kind == event.KindProp {
			names = append(names, s.Name)
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
