package conformance

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/gen"
	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/parser"
	"repro/internal/semantics"
	"repro/internal/synth"
	"repro/internal/trace"
)

// asyncCheck draws one multi-clock chart and probes the mclock executor
// against the reference semantics under two phase arrangements: the
// generator's forward phases (cross arrows likely satisfiable) and the
// inverted phases (cross-domain causality races — source events now tend
// to land after their targets). In both, a coherent multi-domain accept
// must be at least weakly justified, and arrow-free orthogonal charts
// must agree with the strict semantics exactly (see asyncCompare).
func asyncCheck(g *gen.Gen) *Divergence {
	spec := g.Async()
	a := spec.Chart
	src := parser.Print("AsyncSpec", a)
	mm, err := mclock.Synthesize(a, nil)
	if err != nil {
		return &Divergence{Kind: "mclock-synth-error", Detail: err.Error(), Source: src}
	}
	n := len(spec.Domains)
	forward := make([]int64, n)
	inverted := make([]int64, n)
	for i := 0; i < n; i++ {
		forward[i] = int64(i)
		inverted[i] = int64(n - 1 - i)
	}
	for _, phases := range [][]int64{forward, inverted} {
		gt, ok := g.AsyncGlobal(spec, phases, 3)
		if !ok {
			continue
		}
		if d := asyncCompare(spec, mm, gt); d != nil {
			gt = asyncShrinkTrace(spec, mm, gt, d.Kind)
			d.Source = src
			d.GlobalTrace = gt
			// Refresh the detail against the shrunk trace.
			if d2 := asyncCompare(spec, mm, gt); d2 != nil && d2.Kind == d.Kind {
				d.Detail = d2.Detail
			}
			return d
		}
	}
	return nil
}

// asyncCompare runs one global trace through a fresh executor and the
// reference semantics and reports a divergence. The bounds mirror what
// the scoreboard design guarantees:
//
//   - soundness against the weak justification predicate — a local
//     monitor samples Chk_evt counts at its own tick, so a source window
//     that later hard-resets still justifies a downstream Chk it already
//     satisfied; the strict single-combination semantics is deliberately
//     NOT the bound (AsyncSatisfied is stronger than the implementation);
//   - exact agreement only when the chart is arrow-free (no cross-domain
//     or in-domain causality to suppress accepts) and every child's
//     pattern is orthogonal (the first-match history abstraction is
//     exact there, as in the single-clock check).
func asyncCompare(spec gen.AsyncSpec, mm *mclock.MultiMonitor, gt trace.GlobalTrace) *Divergence {
	a := spec.Chart
	v, err := mclock.NewExec(mm, monitor.ModeDetect).Run(gt)
	if err != nil {
		return &Divergence{Kind: "mclock-exec-error", Detail: err.Error()}
	}
	monSat := v.Accepts > 0
	if monSat && !semantics.AsyncWeaklyJustified(a, gt) {
		return &Divergence{Kind: "async-unsound",
			Detail: fmt.Sprintf("executor counted %d coherent accepts without even weak semantic justification", v.Accepts)}
	}
	if !monSat && asyncExactComparable(a) {
		if _, oracleSat := semantics.AsyncSatisfied(a, gt); oracleSat {
			return &Divergence{Kind: "async-incomplete",
				Detail: "reference semantics finds a coherent match but the executor never reached a coherent accept"}
		}
	}
	return nil
}

// asyncExactComparable reports whether the executor must reproduce the
// reference verdict exactly: no causality arrows anywhere and every
// child an orthogonal pattern.
func asyncExactComparable(a *chart.Async) bool {
	if len(a.CrossArrows) > 0 || !arrowFree(a) {
		return false
	}
	for _, ch := range a.Children {
		p, ok := synth.WindowPattern(ch)
		if !ok {
			return false
		}
		if orth, err := p.Orthogonal(); err != nil || !orth {
			return false
		}
	}
	return true
}

// asyncShrinkTrace minimizes the global trace by chunk removal while the
// same divergence kind persists. The chart itself is kept as drawn —
// the async generator's charts are already small, and cross-arrow
// bookkeeping makes structural mutation rarely worth the complexity.
func asyncShrinkTrace(spec gen.AsyncSpec, mm *mclock.MultiMonitor, gt trace.GlobalTrace, kind string) trace.GlobalTrace {
	fails := func(cand trace.GlobalTrace) bool {
		d := asyncCompare(spec, mm, cand)
		return d != nil && d.Kind == kind
	}
	for {
		reduced := false
		for size := len(gt) / 2; size >= 1; size /= 2 {
			for start := 0; start+size <= len(gt); start += size {
				cand := make(trace.GlobalTrace, 0, len(gt)-size)
				cand = append(cand, gt[:start]...)
				cand = append(cand, gt[start+size:]...)
				if len(cand) == 0 {
					continue
				}
				if fails(cand) {
					gt = cand
					reduced = true
					break
				}
			}
			if reduced {
				break
			}
		}
		if !reduced {
			return gt
		}
	}
}
