package conformance

import (
	"testing"
)

// TestCampaignFixedSeed runs a deliberately small deterministic campaign
// as part of tier-1: every execution tier, the oracle sandwich, the
// server round trip, and crash recovery must agree on every draw. The
// full-size campaign (N=500) runs as `make conformance`.
func TestCampaignFixedSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign spins up live servers; skipped in -short")
	}
	rep, err := Run(Config{Seed: 1, Charts: 40, ServerEvery: 10})
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if rep.ServerRuns == 0 || rep.Recoveries == 0 {
		t.Fatalf("campaign exercised no server runs (%d) or recoveries (%d)", rep.ServerRuns, rep.Recoveries)
	}
	if rep.MineRuns == 0 {
		t.Fatalf("campaign exercised no spec-mining round trips")
	}
	for _, d := range rep.Divergences {
		t.Errorf("%s\n%s", d, d.Source)
	}
}

// TestRegressionsReplay replays every shrunk divergence ever found by a
// campaign — the corpus under testdata/regressions is append-only, so a
// fixed bug stays fixed.
func TestRegressionsReplay(t *testing.T) {
	ds, err := ReplayDir("../../testdata/regressions")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		t.Errorf("regression %s reproduces again: %s", d.File, d.Detail)
	}
}
