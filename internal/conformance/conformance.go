// Package conformance is the generative conformance harness: it draws
// random well-formed CESC charts and adversarial tick streams
// (internal/gen), decides ground truth with the slow-but-obviously-
// correct reference semantics (internal/semantics), and differentially
// checks every layer of the stack against it — the three detector
// execution tiers, the exact pattern matcher, both history
// abstractions, the multi-clock executor, the daemon's NDJSON and VCD
// ingest paths, and crash-at-every-batch WAL recovery. Divergences are
// shrunk to minimal (chart, trace) pairs and emitted as replayable
// regressions; see cmd/cescfuzz for the CLI.
package conformance

import (
	"fmt"
	"strings"

	"repro/internal/chart"
	"repro/internal/gen"
	"repro/internal/parser"
	"repro/internal/trace"
)

// Config tunes a campaign; zero values select the documented defaults.
type Config struct {
	// Seed makes the whole campaign deterministic: same seed, same
	// charts, same traces, same verdicts.
	Seed int64
	// Charts is the number of single-clock charts to draw (default 100).
	Charts int
	// TracesPerChart is the number of adversarial traces checked against
	// each chart (default 2).
	TracesPerChart int
	// TraceLen is the tick count of each generated trace (default 40).
	TraceLen int
	// AsyncCharts is the number of multi-clock charts to draw
	// (default Charts/10).
	AsyncCharts int
	// ServerEvery routes every k-th chart through a live cescd instance
	// (NDJSON and VCD ingest; default 10; negative disables).
	ServerEvery int
	// RecoveryEvery crash-recovers every k-th server run at every batch
	// boundary (default 2 — every second server run; negative disables).
	RecoveryEvery int
	// PageEvery pages every k-th server run's sessions out to the WAL
	// between batches, so each batch lands on a cold session and forces
	// a revival (default 3 — every third server run; negative disables).
	// Verdicts must still match the oracle exactly: paging is required
	// to be transparent.
	PageEvery int
	// MineEvery runs the spec-mining round-trip phase on every k-th
	// chart: satisfying witnesses are mined back into charts, and every
	// chart clearing the mine validation gate must accept each witness
	// it came from, with the gate's own differential stack escalated as
	// divergences (default 5; negative disables).
	MineEvery int
	// RegressionDir, when set, receives a shrunk replayable reproduction
	// of every divergence.
	RegressionDir string
	// Gen tunes the chart generator.
	Gen gen.Config
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Charts == 0 {
		c.Charts = 100
	}
	if c.TracesPerChart == 0 {
		c.TracesPerChart = 2
	}
	if c.TraceLen == 0 {
		c.TraceLen = 40
	}
	if c.AsyncCharts == 0 {
		c.AsyncCharts = c.Charts / 10
	}
	if c.ServerEvery == 0 {
		c.ServerEvery = 10
	}
	if c.RecoveryEvery == 0 {
		c.RecoveryEvery = 2
	}
	if c.PageEvery == 0 {
		c.PageEvery = 3
	}
	if c.MineEvery == 0 {
		c.MineEvery = 5
	}
	return c
}

// Divergence is one disagreement between two parties that must agree,
// with everything needed to reproduce it: the (shrunk) chart in
// canonical source form and the offending trace.
type Divergence struct {
	// Kind names the pair that disagreed (e.g. "tier-program",
	// "nfa-vs-oracle", "server-ndjson", "recovery").
	Kind string
	// Detail is a human-readable account of the disagreement.
	Detail string
	// Seed and Index locate the draw inside the campaign.
	Seed  int64
	Index int
	// Source is the chart in canonical .cesc form (post-shrink).
	Source string
	// Trace is the offending tick stream (post-shrink).
	Trace trace.Trace
	// GlobalTrace is set instead of Trace for multi-clock divergences.
	GlobalTrace trace.GlobalTrace
	// File is the regression basename when one was written.
	File string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s (seed %d, chart %d): %s", d.Kind, d.Seed, d.Index, d.Detail)
}

// Report summarizes one campaign.
type Report struct {
	Seed        int64
	Charts      int
	Traces      int
	AsyncCharts int
	ServerRuns  int
	Recoveries  int
	Pageouts    int
	MineRuns    int
	Divergences []*Divergence
}

// Run executes a campaign. A non-nil error means the harness itself
// failed (e.g. an unwritable regression dir); divergences are reported,
// not returned as errors.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g := gen.New(cfg.Seed, cfg.Gen)
	rep := &Report{Seed: cfg.Seed}

	for i := 0; i < cfg.Charts; i++ {
		c := g.Chart()
		rep.Charts++
		sup, err := gen.Support(c)
		if err != nil {
			return rep, fmt.Errorf("chart %d: support: %w", i, err)
		}
		for k := 0; k < cfg.TracesPerChart; k++ {
			tr := g.Trace(c, sup, cfg.TraceLen)
			rep.Traces++
			if d := checkChart(c, tr); d != nil {
				d = finishDivergence(cfg, d, i, c, tr, func(c2 chart.Chart, tr2 trace.Trace) bool {
					d2 := checkChart(c2, tr2)
					return d2 != nil && d2.Kind == d.Kind
				})
				rep.Divergences = append(rep.Divergences, d)
				logf("DIVERGENCE %s", d)
			}
		}
		if cfg.ServerEvery > 0 && i%cfg.ServerEvery == 0 {
			run := i / cfg.ServerEvery
			doRecover := cfg.RecoveryEvery > 0 && run%cfg.RecoveryEvery == 0
			doPage := cfg.PageEvery > 0 && run%cfg.PageEvery == 0
			tr := g.Trace(c, sup, cfg.TraceLen)
			ds, recovered, paged, err := serverCheck(c, tr, doRecover, doPage)
			if err != nil {
				return rep, fmt.Errorf("chart %d: server phase: %w", i, err)
			}
			rep.ServerRuns++
			rep.Recoveries += recovered
			rep.Pageouts += paged
			for _, d := range ds {
				// Server divergences are shrunk against the local check
				// only when the local stack also disagrees; a pure
				// transport divergence keeps the original pair (the
				// server harness is too heavy for the shrink loop).
				d = finishDivergence(cfg, d, i, c, tr, nil)
				rep.Divergences = append(rep.Divergences, d)
				logf("DIVERGENCE %s", d)
			}
		}
		if cfg.MineEvery > 0 && i%cfg.MineEvery == 0 {
			rep.MineRuns++
			for _, d := range mineCheck(g, c, sup, cfg.Seed) {
				// mineCheck sets Source to the offending mined chart and
				// shrinks the witness itself, so provenance and the
				// regression write happen here rather than through
				// finishDivergence (which would re-print the generated
				// chart over the mined one).
				d.Seed, d.Index = cfg.Seed, i
				if cfg.RegressionDir != "" {
					if err := writeRegression(cfg.RegressionDir, d); err != nil {
						d.Detail += fmt.Sprintf(" (regression write failed: %v)", err)
					}
				}
				rep.Divergences = append(rep.Divergences, d)
				logf("DIVERGENCE %s", d)
			}
		}
		if i%25 == 24 {
			logf("%d/%d charts, %d divergences", i+1, cfg.Charts, len(rep.Divergences))
		}
	}

	for i := 0; i < cfg.AsyncCharts; i++ {
		rep.AsyncCharts++
		if d := asyncCheck(g); d != nil {
			d.Seed, d.Index = cfg.Seed, i
			if cfg.RegressionDir != "" {
				if err := writeRegression(cfg.RegressionDir, d); err != nil {
					return rep, err
				}
			}
			rep.Divergences = append(rep.Divergences, d)
			logf("DIVERGENCE %s", d)
		}
	}
	return rep, nil
}

// finishDivergence shrinks (when a local re-check predicate is given),
// stamps provenance, renders the canonical source, and writes the
// regression file.
func finishDivergence(cfg Config, d *Divergence, idx int, c chart.Chart, tr trace.Trace,
	fails func(chart.Chart, trace.Trace) bool) *Divergence {
	if fails != nil {
		c, tr = gen.Shrink(c, tr, fails)
		// Re-derive the detail from the shrunk pair so the report
		// describes what the regression file actually contains.
		if d2 := checkChart(c, tr); d2 != nil && d2.Kind == d.Kind {
			d.Detail = d2.Detail
		}
	}
	d.Seed, d.Index = cfg.Seed, idx
	d.Source = parser.Print("R_"+strings.ReplaceAll(sanitize(d.Kind), "-", "_"), c)
	d.Trace = tr
	if cfg.RegressionDir != "" {
		if err := writeRegression(cfg.RegressionDir, d); err != nil {
			// Surface the write failure without losing the divergence.
			d.Detail += fmt.Sprintf(" (regression write failed: %v)", err)
		}
	}
	return d
}
