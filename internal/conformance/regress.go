package conformance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/chart"
	"repro/internal/gen"
	"repro/internal/mclock"
	"repro/internal/parser"
	"repro/internal/server"
	"repro/internal/trace"
)

// A regression is three sibling files under the regression directory:
//
//	<name>.cesc        the shrunk chart, canonical source
//	<name>.trace       the offending trace, NDJSON (StateJSON per line;
//	                   async regressions add domain/time per line)
//	<name>.meta.json   provenance: kind, detail, campaign seed and index
//
// The .trace format is exactly the daemon's ingest wire format, so a
// single-clock regression can be replayed against a live server with
// curl alone.

type regressionMeta struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	Seed   int64  `json:"seed"`
	Index  int    `json:"index"`
	Async  bool   `json:"async,omitempty"`
}

type globalTickJSON struct {
	Domain string           `json:"domain"`
	Time   int64            `json:"time"`
	State  server.StateJSON `json:"state"`
}

// writeRegression persists d as a replayable pair, picking a fresh name
// when the natural one is taken, and records the basename in d.File.
func writeRegression(dir string, d *Divergence) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := fmt.Sprintf("%s-s%d-c%d", sanitize(d.Kind), d.Seed, d.Index)
	name := base
	for n := 2; ; n++ {
		if _, err := os.Stat(filepath.Join(dir, name+".cesc")); os.IsNotExist(err) {
			break
		}
		name = fmt.Sprintf("%s-%d", base, n)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".cesc"), []byte(d.Source), 0o644); err != nil {
		return err
	}
	var buf strings.Builder
	enc := json.NewEncoder(&buf)
	if d.GlobalTrace != nil {
		for _, t := range d.GlobalTrace {
			if err := enc.Encode(globalTickJSON{Domain: t.Domain, Time: t.Time, State: server.EncodeState(t.State)}); err != nil {
				return err
			}
		}
	} else {
		for _, s := range d.Trace {
			if err := enc.Encode(server.EncodeState(s)); err != nil {
				return err
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, name+".trace"), []byte(buf.String()), 0o644); err != nil {
		return err
	}
	meta, err := json.MarshalIndent(regressionMeta{
		Kind: d.Kind, Detail: d.Detail, Seed: d.Seed, Index: d.Index,
		Async: d.GlobalTrace != nil,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".meta.json"), append(meta, '\n'), 0o644); err != nil {
		return err
	}
	d.File = name
	return nil
}

// ReplayDir re-runs the full differential check over every regression
// pair in dir and returns the divergences that still reproduce. A fixed
// codebase returns none; a regressed one names the broken pair. A
// missing directory is an empty corpus, not an error.
func ReplayDir(dir string) ([]*Divergence, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".cesc") {
			names = append(names, strings.TrimSuffix(e.Name(), ".cesc"))
		}
	}
	sort.Strings(names)
	var out []*Divergence
	for _, name := range names {
		d, err := ReplayFile(filepath.Join(dir, name+".cesc"))
		if err != nil {
			return out, fmt.Errorf("regression %s: %w", name, err)
		}
		if d != nil {
			d.File = name
			out = append(out, d)
		}
	}
	return out, nil
}

// ReplayFile replays one regression (given its .cesc path, with the
// .trace sibling alongside) and returns the divergence if it still
// reproduces, nil when the stack now agrees.
func ReplayFile(cescPath string) (*Divergence, error) {
	src, err := os.ReadFile(cescPath)
	if err != nil {
		return nil, err
	}
	c, err := parser.ParseChart(string(src))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cescPath, err)
	}
	tracePath := strings.TrimSuffix(cescPath, ".cesc") + ".trace"
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	if a, ok := c.(*chart.Async); ok {
		gt, err := readGlobalTrace(f)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", tracePath, err)
		}
		spec := asyncSpecOf(a)
		mm, err := mclock.Synthesize(a, nil)
		if err != nil {
			return &Divergence{Kind: "mclock-synth-error", Detail: err.Error(), Source: string(src)}, nil
		}
		return asyncCompare(spec, mm, gt), nil
	}

	tr, err := readTrace(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", tracePath, err)
	}
	return checkChart(c, tr), nil
}

func readTrace(f *os.File) (trace.Trace, error) {
	var tr trace.Trace
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var sj server.StateJSON
		if err := json.Unmarshal([]byte(line), &sj); err != nil {
			return nil, err
		}
		tr = append(tr, sj.ToState())
	}
	return tr, sc.Err()
}

func readGlobalTrace(f *os.File) (trace.GlobalTrace, error) {
	var gt trace.GlobalTrace
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var tj globalTickJSON
		if err := json.Unmarshal([]byte(line), &tj); err != nil {
			return nil, err
		}
		gt = append(gt, trace.GlobalTick{Domain: tj.Domain, Time: tj.Time, State: tj.State.ToState()})
	}
	return gt, sc.Err()
}

// asyncSpecOf rebuilds the campaign bookkeeping for a parsed async
// chart (each child owns exactly one clock domain, by validation).
func asyncSpecOf(a *chart.Async) gen.AsyncSpec {
	spec := gen.AsyncSpec{Chart: a}
	for _, ch := range a.Children {
		cks := ch.Clocks()
		d := ""
		if len(cks) > 0 {
			d = cks[0]
		}
		spec.Domains = append(spec.Domains, d)
	}
	return spec
}

// sanitize maps a divergence kind to a filesystem-safe slug.
func sanitize(kind string) string {
	var b strings.Builder
	for _, r := range kind {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	return b.String()
}
