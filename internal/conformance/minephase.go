package conformance

import (
	"fmt"
	"sort"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/gen"
	"repro/internal/mine"
	"repro/internal/parser"
	"repro/internal/semantics"
	"repro/internal/trace"
)

// mineCheck is the spec-mining round-trip phase: draw satisfying
// witnesses for a generated chart, mine the witness corpus back into
// charts (trace-aligned, confidence 1.0), and hold the miner to its
// contract. Confidence-1.0 aligned mining makes two properties
// theorems, so any breach is a stack bug, not mining noise:
//
//   - every chart that clears the mine validation gate must accept
//     every witness it was mined from (the reference semantics decides
//     acceptance); the offending witness is shrunk before it is
//     reported;
//   - the gate's internal differential stack (engine tiers vs. table
//     vs. oracle) must agree — mine.Result.Divergent escalates here.
//
// Near-miss discrimination is enforced inside the gate itself: a chart
// only passes when ≥95% of the oracle-confirmed mutants constructed
// from its own witness windows are flagged by the assert monitor.
// Mining legitimately yielding nothing (or rejecting a candidate on
// soundness grounds) is not a divergence.
func mineCheck(g *gen.Gen, c chart.Chart, sup *event.Support, campaignSeed int64) []*Divergence {
	const wantWitnesses = 6
	var segs []trace.Trace
	for tries := 0; tries < wantWitnesses*4 && len(segs) < wantWitnesses; tries++ {
		if w, ok := g.Witness(c, sup); ok && len(w) >= 2 {
			segs = append(segs, w)
		}
	}
	if len(segs) < 3 {
		return nil // chart has no usable witnesses; nothing to mine
	}
	// Truncate to the shortest witness so every segment covers every
	// mined offset: window statistics then have full support by
	// construction and mutant rejection is deterministic.
	minLen := len(segs[0])
	for _, s := range segs {
		if len(s) < minLen {
			minLen = len(s)
		}
	}
	for i := range segs {
		segs[i] = segs[i][:minLen]
	}

	corpus := &mine.Corpus{Segments: segs}
	mcfg := mineConfig(c, len(segs), minLen, campaignSeed)
	ms, rs, err := mine.MineValidated(corpus, mcfg)
	if err != nil {
		return []*Divergence{{Kind: "mine-roundtrip", Detail: err.Error()}}
	}
	var out []*Divergence
	for i, m := range ms {
		if rs[i].Divergent {
			out = append(out, &Divergence{
				Kind:   "mine-tier",
				Detail: rs[i].Reason,
				Source: parser.Print("R_mine_tier", m.Assert),
			})
			continue
		}
		if !rs[i].Pass {
			continue
		}
		for wi, w := range segs {
			if !semantics.NewOracle(w).Contains(m.Scenario) {
				shrunk := shrinkMineWitness(segs, wi, mcfg)
				out = append(out, &Divergence{
					Kind:   "mine-witness",
					Detail: fmt.Sprintf("validated mined chart %s rejects witness %d of its own corpus", m.Name, wi),
					Source: parser.Print("R_mine_witness", m.Scenario),
					Trace:  shrunk,
				})
				break
			}
		}
	}
	return out
}

func mineConfig(c chart.Chart, support, minLen int, seed int64) mine.Config {
	clock := "clk"
	if clocks := c.Clocks(); len(clocks) > 0 && clocks[0] != "" {
		clock = clocks[0]
	}
	w := minLen
	if w > 12 {
		w = 12
	}
	return mine.Config{
		AlignTraces: true,
		MinSupport:  support,
		Confidence:  1.0,
		MaxWindow:   w,
		Clock:       clock,
		ChartName:   "mined_rt",
		Seed:        seed,
	}
}

// mineWitnessFails re-runs the round-trip property with segs[wi]
// replaced by cand (all segments re-truncated to cand's length): it
// reports whether some validated mined chart still rejects cand. The
// mining pipeline is deterministic, so this predicate is stable and
// drives the shrinker below.
func mineWitnessFails(segs []trace.Trace, wi int, cand trace.Trace, mcfg mine.Config) bool {
	if len(cand) < 2 {
		return false
	}
	trial := make([]trace.Trace, len(segs))
	copy(trial, segs)
	trial[wi] = cand
	for i := range trial {
		if len(trial[i]) > len(cand) {
			trial[i] = trial[i][:len(cand)]
		}
	}
	cfg := mcfg
	if cfg.MaxWindow > len(cand) {
		cfg.MaxWindow = len(cand)
	}
	ms, rs, err := mine.MineValidated(&mine.Corpus{Segments: trial}, cfg)
	if err != nil {
		return true
	}
	for i, m := range ms {
		if rs[i].Pass && !semantics.NewOracle(cand).Contains(m.Scenario) {
			return true
		}
	}
	return false
}

// shrinkMineWitness minimizes the offending witness: drop trailing
// ticks, then single events, while the round-trip property still fails.
func shrinkMineWitness(segs []trace.Trace, wi int, mcfg mine.Config) trace.Trace {
	cur := segs[wi]
	for len(cur) > 2 && mineWitnessFails(segs, wi, cur[:len(cur)-1], mcfg) {
		cur = cur[:len(cur)-1]
	}
	for t := range cur {
		var names []string
		for e, v := range cur[t].Events {
			if v {
				names = append(names, e)
			}
		}
		sort.Strings(names)
		for _, e := range names {
			cand := cloneTrace(cur)
			delete(cand[t].Events, e)
			if mineWitnessFails(segs, wi, cand, mcfg) {
				cur = cand
			}
		}
	}
	return cur
}

func cloneTrace(tr trace.Trace) trace.Trace {
	out := make(trace.Trace, len(tr))
	for i, src := range tr {
		st := event.NewState()
		for e, v := range src.Events {
			st.Events[e] = v
		}
		for p, v := range src.Props {
			st.Props[p] = v
		}
		out[i] = st
	}
	return out
}
