package trace

import (
	"fmt"
	"io"
	"sort"
)

// WriteGlobalVCD dumps a multi-clock global trace as a VCD file for
// waveform inspection of GALS runs: each clock domain becomes a scope
// containing its signals plus a `tick` pulse marking the domain's clock
// edges; timestamps are the global times.
func WriteGlobalVCD(w io.Writer, g GlobalTrace) error {
	if err := g.Validate(); err != nil {
		return err
	}
	domains := g.Domains()
	// Collect per-domain signal names.
	names := map[string][]string{}
	for _, d := range domains {
		seen := map[string]bool{}
		for _, t := range g {
			if t.Domain != d {
				continue
			}
			for n := range t.State.Events {
				seen[n] = true
			}
			for n := range t.State.Props {
				seen[n] = true
			}
		}
		var list []string
		for n := range seen {
			list = append(list, n)
		}
		sort.Strings(list)
		names[d] = list
	}
	// Assign codes: domain tick pulses first, then signals.
	codes := map[string]string{} // "domain/name" -> code
	next := 0
	alloc := func(key string) string {
		c := vcdCode(next)
		next++
		codes[key] = c
		return c
	}
	if _, err := fmt.Fprint(w, "$timescale 1ns $end\n"); err != nil {
		return err
	}
	for _, d := range domains {
		if _, err := fmt.Fprintf(w, "$scope module %s $end\n", d); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "$var wire 1 %s tick $end\n", alloc(d+"/tick")); err != nil {
			return err
		}
		for _, n := range names[d] {
			if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", alloc(d+"/"+n), n); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, "$upscope $end\n"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$enddefinitions $end\n#0\n$dumpvars\n"); err != nil {
		return err
	}
	keys := make([]string, 0, len(codes))
	for k := range codes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cur := map[string]bool{}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "0%s\n", codes[k]); err != nil {
			return err
		}
		cur[k] = false
	}
	if _, err := fmt.Fprint(w, "$end\n"); err != nil {
		return err
	}
	emit := func(at int64, key string, v bool) error {
		if cur[key] == v {
			return nil
		}
		cur[key] = v
		bit := "0"
		if v {
			bit = "1"
		}
		_, err := fmt.Fprintf(w, "%s%s\n", bit, codes[key])
		return err
	}
	var lastTime int64 = -1
	for _, t := range g {
		if t.Time != lastTime {
			// Close the previous instant: drop tick pulses and signals
			// of domains not ticking now happens implicitly at the next
			// write; emit the time header.
			if _, err := fmt.Fprintf(w, "#%d\n", t.Time); err != nil {
				return err
			}
			// Lower every pulse from earlier instants.
			for _, k := range keys {
				if cur[k] {
					if err := emit(t.Time, k, false); err != nil {
						return err
					}
				}
			}
			lastTime = t.Time
		}
		if err := emit(t.Time, t.Domain+"/tick", true); err != nil {
			return err
		}
		for _, n := range names[t.Domain] {
			v := t.State.Event(n) || t.State.Prop(n)
			if v {
				if err := emit(t.Time, t.Domain+"/"+n, true); err != nil {
					return err
				}
			}
		}
	}
	if len(g) > 0 {
		_, err := fmt.Fprintf(w, "#%d\n", g[len(g)-1].Time+1)
		return err
	}
	return nil
}
