package trace

import "repro/internal/event"

// Pack projects every state of the trace onto the support's slots —
// the offline analog of the daemon's decode-once ingest: the symbol
// table is consulted once per tick here, and replaying the packed trace
// through program engines is pure bit arithmetic.
func (t Trace) Pack(sup *event.Support) []event.Packed {
	out := make([]event.Packed, len(t))
	for i, s := range t {
		out[i] = sup.Pack(s)
	}
	return out
}

// PackVocab projects every state of the trace onto a vocabulary's slots
// (the union-interner form sessions use when one packed tick feeds many
// monitors).
func (t Trace) PackVocab(v *event.Vocabulary) []event.Packed {
	out := make([]event.Packed, len(t))
	for i, s := range t {
		out[i] = v.Pack(s)
	}
	return out
}
