package trace

import (
	"strings"
	"testing"

	"repro/internal/event"
)

// FuzzStreamVCD feeds arbitrary bytes to the streaming VCD reader: it
// must reject garbage and truncated dumps with an error, never a panic,
// and any states it does emit must carry only declared symbols.
func FuzzStreamVCD(f *testing.F) {
	var sb strings.Builder
	tr := Trace{
		event.NewState().WithEvents("req").WithProps("en"),
		event.NewState().WithProps("en"),
		event.NewState().WithEvents("ack"),
	}
	if err := WriteVCD(&sb, "dut", tr); err != nil {
		f.Fatal(err)
	}
	full := sb.String()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add("$var wire 1 ! req $end\n$enddefinitions $end\n#0\n1!\n")
	f.Add("#5\n")
	f.Add("$scope module x $end")
	f.Add("")
	kindOf := func(name string) event.Kind {
		if name == "en" {
			return event.KindProp
		}
		return event.KindEvent
	}
	f.Fuzz(func(t *testing.T, src string) {
		_ = StreamVCD(strings.NewReader(src), kindOf, func(s event.State) error {
			return nil
		})
	})
}
