// Package trace implements clocked traces — finite prefixes of the
// paper's runs r : N -> STATES — together with builders, random
// generators for property-based testing, and VCD export. Single-clock
// traces are plain state sequences; multi-clock (GALS) executions are
// GlobalTraces whose entries are tagged with a clock-domain name and a
// global timestamp, the paper's "global clock obtained as a union of
// clock ticks contributed by all the component clocks".
package trace

import (
	"fmt"
	"strings"

	"repro/internal/event"
)

// Trace is a finite prefix of a run: the state at each successive tick of
// a single clock.
type Trace []event.State

// Clone deep-copies the trace.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	for i, s := range t {
		out[i] = s.Clone()
	}
	return out
}

// Window returns the subtrace [from, from+n). It panics if out of range.
func (t Trace) Window(from, n int) Trace { return t[from : from+n] }

// Concat returns the concatenation of traces.
func Concat(ts ...Trace) Trace {
	var out Trace
	for _, t := range ts {
		out = append(out, t...)
	}
	return out
}

// String renders one state per line, numbered by tick.
func (t Trace) String() string {
	var b strings.Builder
	for i, s := range t {
		fmt.Fprintf(&b, "%4d: %s\n", i, s)
	}
	return b.String()
}

// Builder assembles traces tick by tick.
type Builder struct {
	trace Trace
	cur   *event.State
}

// NewBuilder returns an empty trace builder.
func NewBuilder() *Builder { return &Builder{} }

// Tick starts a new clock tick with an empty state. Returns the builder
// for chaining.
func (b *Builder) Tick() *Builder {
	b.flush()
	s := event.NewState()
	b.cur = &s
	return b
}

func (b *Builder) flush() {
	if b.cur != nil {
		b.trace = append(b.trace, *b.cur)
		b.cur = nil
	}
}

// Events marks the named events as occurring at the current tick.
func (b *Builder) Events(names ...string) *Builder {
	b.ensure()
	for _, n := range names {
		b.cur.Events[n] = true
	}
	return b
}

// Props marks the named propositions as holding at the current tick.
func (b *Builder) Props(names ...string) *Builder {
	b.ensure()
	for _, n := range names {
		b.cur.Props[n] = true
	}
	return b
}

// Prop sets the proposition name to val at the current tick.
func (b *Builder) Prop(name string, val bool) *Builder {
	b.ensure()
	b.cur.Props[name] = val
	return b
}

func (b *Builder) ensure() {
	if b.cur == nil {
		b.Tick()
	}
}

// Idle appends n empty ticks.
func (b *Builder) Idle(n int) *Builder {
	b.flush()
	for i := 0; i < n; i++ {
		b.trace = append(b.trace, event.NewState())
	}
	return b
}

// Append copies the states of t as further ticks.
func (b *Builder) Append(t Trace) *Builder {
	b.flush()
	b.trace = append(b.trace, t.Clone()...)
	return b
}

// Len reports the number of completed ticks (including the one being
// built, if any).
func (b *Builder) Len() int {
	n := len(b.trace)
	if b.cur != nil {
		n++
	}
	return n
}

// Build finalizes and returns the trace. The builder may be reused; it
// restarts empty.
func (b *Builder) Build() Trace {
	b.flush()
	t := b.trace
	b.trace = nil
	return t
}

// GlobalTick is one tick of the global clock: domain Domain ticked at
// global time Time observing State. Two domains ticking simultaneously
// yield two entries with equal Time (ordering between them is the
// scheduler's choice and is preserved).
type GlobalTick struct {
	Time   int64
	Domain string
	State  event.State
}

// GlobalTrace is a finite prefix of a multi-clock global run, ordered by
// non-decreasing Time.
type GlobalTrace []GlobalTick

// Project extracts the single-clock trace observed by one domain.
func (g GlobalTrace) Project(domain string) Trace {
	var out Trace
	for _, t := range g {
		if t.Domain == domain {
			out = append(out, t.State)
		}
	}
	return out
}

// Domains returns the distinct domain names in order of first appearance.
func (g GlobalTrace) Domains() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range g {
		if !seen[t.Domain] {
			seen[t.Domain] = true
			out = append(out, t.Domain)
		}
	}
	return out
}

// Validate checks monotone timestamps.
func (g GlobalTrace) Validate() error {
	for i := 1; i < len(g); i++ {
		if g[i].Time < g[i-1].Time {
			return fmt.Errorf("trace: global tick %d time %d precedes tick %d time %d",
				i, g[i].Time, i-1, g[i-1].Time)
		}
	}
	return nil
}

// Interleave merges per-domain traces into a global trace using fixed
// clock periods and phases: domain d ticks at times phase[d] + k*period[d].
// Ties are broken by the order of the domains slice.
func Interleave(domains []string, periods, phases map[string]int64, traces map[string]Trace) (GlobalTrace, error) {
	idx := make(map[string]int, len(domains))
	var out GlobalTrace
	for {
		best := ""
		var bestTime int64
		for _, d := range domains {
			t, ok := traces[d]
			if !ok {
				return nil, fmt.Errorf("trace: no trace for domain %q", d)
			}
			p := periods[d]
			if p <= 0 {
				return nil, fmt.Errorf("trace: domain %q has non-positive period %d", d, p)
			}
			if idx[d] >= len(t) {
				continue
			}
			at := phases[d] + int64(idx[d])*p
			if best == "" || at < bestTime {
				best, bestTime = d, at
			}
		}
		if best == "" {
			return out, nil
		}
		out = append(out, GlobalTick{Time: bestTime, Domain: best, State: traces[best][idx[best]]})
		idx[best]++
	}
}
