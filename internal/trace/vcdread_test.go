package trace

import (
	"io"
	"strings"
	"testing"

	"repro/internal/event"
)

func TestVCDRoundTrip(t *testing.T) {
	orig := NewBuilder().
		Tick().Events("req", "rd").
		Tick().Events("ack").
		Tick().
		Tick().Events("req").
		Tick().
		Build()
	var sb strings.Builder
	if err := WriteVCD(&sb, "dut", orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVCD(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip length %d, want %d\n%s", len(back), len(orig), sb.String())
	}
	for i := range orig {
		if !orig[i].Equal(back[i]) {
			t.Errorf("tick %d: %v != %v", i, orig[i], back[i])
		}
	}
}

func TestVCDRoundTripWithProps(t *testing.T) {
	orig := NewBuilder().
		Tick().Events("e").Props("busy").
		Tick().Props("busy").
		Tick().
		Build()
	var sb strings.Builder
	if err := WriteVCD(&sb, "dut", orig); err != nil {
		t.Fatal(err)
	}
	kindOf := func(name string) event.Kind {
		if name == "busy" {
			return event.KindProp
		}
		return event.KindEvent
	}
	back, err := ReadVCD(strings.NewReader(sb.String()), kindOf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !orig[i].Equal(back[i]) {
			t.Errorf("tick %d: %v != %v", i, orig[i], back[i])
		}
	}
}

func TestVCDRoundTripRandom(t *testing.T) {
	sup := newTestSupport(t)
	for seed := int64(0); seed < 10; seed++ {
		orig := NewGenerator(sup, seed, 0.4).Trace(30)
		var sb strings.Builder
		if err := WriteVCD(&sb, "r", orig); err != nil {
			t.Fatal(err)
		}
		kindOf := func(name string) event.Kind {
			if name == "p" {
				return event.KindProp
			}
			return event.KindEvent
		}
		back, err := ReadVCD(strings.NewReader(sb.String()), kindOf)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(orig) {
			t.Fatalf("seed %d: length %d != %d", seed, len(back), len(orig))
		}
		for i := range orig {
			if !orig[i].Equal(back[i]) {
				t.Fatalf("seed %d tick %d: %v != %v", seed, i, orig[i], back[i])
			}
		}
	}
}

func TestReadVCDErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"wide var", "$var wire 8 ! bus $end\n$enddefinitions $end\n#0\n"},
		{"malformed var", "$var wire $end\n"},
		{"bad timestamp", "$enddefinitions $end\n#zz\n"},
		{"backwards time", "$var wire 1 ! a $end\n$enddefinitions $end\n#5\n#2\n"},
		{"unknown code", "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1Z\n"},
		{"change before defs", "1!\n"},
		{"garbage", "$var wire 1 ! a $end\n$enddefinitions $end\nxyz\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadVCD(strings.NewReader(tc.src), nil); err == nil {
				t.Errorf("accepted: %q", tc.src)
			}
		})
	}
}

func TestReadVCDEmpty(t *testing.T) {
	tr, err := ReadVCD(strings.NewReader("$enddefinitions $end\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 0 {
		t.Errorf("empty VCD produced %d ticks", len(tr))
	}
}

// TestStreamVCDIncremental checks the streaming reader emits the same
// tick sequence ReadVCD materializes, one state at a time.
func TestStreamVCDIncremental(t *testing.T) {
	orig := NewBuilder().
		Tick().Events("req", "rd").
		Tick().Events("ack").
		Tick().
		Tick().Events("req").
		Tick().
		Build()
	var sb strings.Builder
	if err := WriteVCD(&sb, "dut", orig); err != nil {
		t.Fatal(err)
	}
	var got Trace
	err := StreamVCD(strings.NewReader(sb.String()), nil, func(s event.State) error {
		got = append(got, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("streamed %d ticks, want %d", len(got), len(orig))
	}
	for i := range orig {
		if !orig[i].Equal(got[i]) {
			t.Errorf("tick %d: %v != %v", i, orig[i], got[i])
		}
	}
}

// TestStreamVCDEmitError checks an emit error aborts the parse and is
// returned verbatim.
func TestStreamVCDEmitError(t *testing.T) {
	orig := NewBuilder().
		Tick().Events("a").
		Tick().Events("b").
		Tick().Events("a").
		Build()
	var sb strings.Builder
	if err := WriteVCD(&sb, "dut", orig); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := StreamVCD(strings.NewReader(sb.String()), nil, func(event.State) error {
		calls++
		if calls == 2 {
			return io.ErrShortWrite
		}
		return nil
	})
	if err != io.ErrShortWrite {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times, want 2", calls)
	}
}
