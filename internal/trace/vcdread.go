package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
)

// StreamVCD parses a Value Change Dump of 1-bit wires incrementally,
// invoking emit once per time unit from the first timestamp to the final
// timestamp (exclusive), each signal holding its value until changed. At
// most one materialized state is alive at a time, so arbitrarily long
// dumps can be consumed from a network stream without buffering the whole
// file — this is the ingestion path of the cescd upload endpoint. It
// inverts WriteVCD (round-trip tested) and accepts the common
// single-scope VCD subset produced by simulators for pure-binary dumps.
//
// kindOf assigns each signal name a kind; when nil every signal is read
// as an event. A non-nil error from emit aborts the parse and is
// returned verbatim.
func StreamVCD(r io.Reader, kindOf func(name string) event.Kind, emit func(event.State) error) error {
	if kindOf == nil {
		kindOf = func(string) event.Kind { return event.KindEvent }
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	codes := make(map[string]string) // code -> name
	cur := make(map[string]bool)     // name -> current value
	var (
		now     int64 = -1
		sawDefs bool
		pending int // value changes since the last timestamp line
	)
	flushTo := func(t int64) error {
		// Materialize states for ticks now..t-1 with the current values.
		for ; now >= 0 && now < t; now++ {
			s := event.NewState()
			for name, v := range cur {
				if !v {
					continue
				}
				if kindOf(name) == event.KindProp {
					s.Props[name] = true
				} else {
					s.Events[name] = true
				}
			}
			if err := emit(s); err != nil {
				return err
			}
		}
		now = t
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$var"):
			// $var wire 1 CODE NAME $end
			fields := strings.Fields(line)
			if len(fields) < 6 {
				return fmt.Errorf("trace: malformed $var line %q", line)
			}
			if fields[2] != "1" {
				return fmt.Errorf("trace: only 1-bit wires supported, got width %q for %q", fields[2], fields[4])
			}
			codes[fields[3]] = fields[4]
			cur[fields[4]] = false
		case strings.HasPrefix(line, "$enddefinitions"):
			sawDefs = true
		case strings.HasPrefix(line, "$"):
			// $timescale/$scope/$upscope/$dumpvars/$end — no content we
			// need beyond what's handled above.
		case line[0] == '#':
			t, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				return fmt.Errorf("trace: bad timestamp %q", line)
			}
			if t < now {
				return fmt.Errorf("trace: timestamp %d goes backwards (now %d)", t, now)
			}
			if now == -1 {
				now = t
			} else if err := flushTo(t); err != nil {
				return err
			}
			pending = 0
		case line[0] == '0' || line[0] == '1':
			if !sawDefs {
				return fmt.Errorf("trace: value change before $enddefinitions")
			}
			code := line[1:]
			name, ok := codes[code]
			if !ok {
				return fmt.Errorf("trace: value change for unknown code %q", code)
			}
			cur[name] = line[0] == '1'
			pending++
		default:
			return fmt.Errorf("trace: unsupported VCD line %q", line)
		}
	}
	// EOF. A dump cut mid-transfer must be reported, never silently read
	// as a shorter trace: a well-formed dump ends with a closing
	// timestamp, so definitions that never finished or value changes with
	// no timestamp after them mean the tail is missing.
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: reading VCD: %w", err)
	}
	if !sawDefs {
		return fmt.Errorf("trace: truncated VCD: EOF before $enddefinitions")
	}
	if pending > 0 {
		return fmt.Errorf("trace: truncated VCD: EOF with %d value change(s) after timestamp %d and no closing timestamp",
			pending, now)
	}
	return nil
}

// ReadVCD parses a Value Change Dump of 1-bit wires back into a trace:
// one trace element per time unit from 0 to the final timestamp
// (exclusive), each signal holding its value until changed. It is a thin
// wrapper over StreamVCD that accumulates the emitted states.
func ReadVCD(r io.Reader, kindOf func(name string) event.Kind) (Trace, error) {
	var out Trace
	err := StreamVCD(r, kindOf, func(s event.State) error {
		out = append(out, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
