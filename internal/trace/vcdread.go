package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/event"
)

// ReadVCD parses a Value Change Dump of 1-bit wires back into a trace:
// one trace element per time unit from 0 to the final timestamp
// (exclusive), each signal holding its value until changed. It inverts
// WriteVCD (round-trip tested) and accepts the common single-scope VCD
// subset produced by simulators for pure-binary dumps.
//
// kindOf assigns each signal name a kind; when nil every signal is read
// as an event.
func ReadVCD(r io.Reader, kindOf func(name string) event.Kind) (Trace, error) {
	if kindOf == nil {
		kindOf = func(string) event.Kind { return event.KindEvent }
	}
	sc := bufio.NewScanner(r)
	codes := make(map[string]string) // code -> name
	cur := make(map[string]bool)     // name -> current value
	var (
		out     Trace
		now     int64 = -1
		sawDefs bool
	)
	flushTo := func(t int64) {
		// Materialize states for ticks now..t-1 with the current values.
		for ; now >= 0 && now < t; now++ {
			s := event.NewState()
			for name, v := range cur {
				if !v {
					continue
				}
				if kindOf(name) == event.KindProp {
					s.Props[name] = true
				} else {
					s.Events[name] = true
				}
			}
			out = append(out, s)
		}
		now = t
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$var"):
			// $var wire 1 CODE NAME $end
			fields := strings.Fields(line)
			if len(fields) < 6 {
				return nil, fmt.Errorf("trace: malformed $var line %q", line)
			}
			if fields[2] != "1" {
				return nil, fmt.Errorf("trace: only 1-bit wires supported, got width %q for %q", fields[2], fields[4])
			}
			codes[fields[3]] = fields[4]
			cur[fields[4]] = false
		case strings.HasPrefix(line, "$enddefinitions"):
			sawDefs = true
		case strings.HasPrefix(line, "$"):
			// $timescale/$scope/$upscope/$dumpvars/$end — no content we
			// need beyond what's handled above.
		case line[0] == '#':
			t, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad timestamp %q", line)
			}
			if t < now {
				return nil, fmt.Errorf("trace: timestamp %d goes backwards (now %d)", t, now)
			}
			if now == -1 {
				now = t
			} else {
				flushTo(t)
			}
		case line[0] == '0' || line[0] == '1':
			if !sawDefs {
				return nil, fmt.Errorf("trace: value change before $enddefinitions")
			}
			code := line[1:]
			name, ok := codes[code]
			if !ok {
				return nil, fmt.Errorf("trace: value change for unknown code %q", code)
			}
			cur[name] = line[0] == '1'
		default:
			return nil, fmt.Errorf("trace: unsupported VCD line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
