package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/event"
)

// truncVCD builds a small dump with a known tick count for cutting up.
func truncVCD(t *testing.T) ([]byte, int) {
	t.Helper()
	var tr Trace
	for i := 0; i < 12; i++ {
		s := event.NewState()
		if i%3 == 0 {
			s.Events["req"] = true
		}
		if i%3 == 1 {
			s.Events["ack"] = true
		}
		tr = append(tr, s)
	}
	var buf bytes.Buffer
	if err := WriteVCD(&buf, "cut", tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), len(tr)
}

// TestReadVCDTruncatedHeader checks a dump cut before the definitions
// finish is reported as truncated, not read as an empty trace.
func TestReadVCDTruncatedHeader(t *testing.T) {
	dump, _ := truncVCD(t)
	cut := bytes.Index(dump, []byte("$enddefinitions"))
	if cut < 0 {
		t.Fatal("no $enddefinitions in dump")
	}
	_, err := ReadVCD(bytes.NewReader(dump[:cut]), nil)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("header-cut dump: err = %v, want truncation error", err)
	}
}

// TestReadVCDTruncatedMidRecord checks a dump cut between a timestamp
// and the next one — value changes with no closing timestamp — errors
// instead of silently dropping the tail ticks.
func TestReadVCDTruncatedMidRecord(t *testing.T) {
	dump, _ := truncVCD(t)
	// Cut just after the last value-change line (drop the final "#12\n").
	cut := bytes.LastIndexByte(bytes.TrimRight(dump, "\n"), '#')
	_, err := ReadVCD(bytes.NewReader(dump[:cut]), nil)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("mid-record cut: err = %v, want truncation error", err)
	}
	if !strings.Contains(err.Error(), "value change") {
		t.Fatalf("error not descriptive: %v", err)
	}
}

// TestReadVCDEveryPrefix sweeps every byte-length prefix of a dump: the
// reader must never panic, and whenever it accepts a prefix the result
// must be a prefix-length trace (a cut can legitimately look like a
// shorter dump — e.g. truncating "#12" to "#1" — but it must never
// yield MORE ticks, and the intact dump must still round-trip).
func TestReadVCDEveryPrefix(t *testing.T) {
	dump, ticks := truncVCD(t)
	for n := 0; n <= len(dump); n++ {
		tr, err := ReadVCD(bytes.NewReader(dump[:n]), nil)
		if err != nil {
			continue
		}
		if len(tr) > ticks {
			t.Fatalf("prefix %d/%d produced %d ticks, full dump has %d", n, len(dump), len(tr), ticks)
		}
		// A cut that drops actual content must never read as the full
		// dump (losing only the final newline is fine).
		if n < len(dump)-1 && len(tr) == ticks {
			t.Fatalf("prefix %d/%d silently read as the complete %d-tick dump", n, len(dump), ticks)
		}
	}
	tr, err := ReadVCD(bytes.NewReader(dump), nil)
	if err != nil || len(tr) != ticks {
		t.Fatalf("intact dump: %d ticks, err %v", len(tr), err)
	}
}
