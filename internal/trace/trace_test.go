package trace

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func TestBuilderBasics(t *testing.T) {
	tr := NewBuilder().
		Tick().Events("a", "b").Props("p").
		Tick().
		Tick().Prop("q", true).Events("c").
		Build()
	if len(tr) != 3 {
		t.Fatalf("len = %d", len(tr))
	}
	if !tr[0].Event("a") || !tr[0].Prop("p") {
		t.Error("tick 0 wrong")
	}
	if !tr[1].IsEmpty() {
		t.Error("tick 1 not empty")
	}
	if !tr[2].Prop("q") || !tr[2].Event("c") {
		t.Error("tick 2 wrong")
	}
}

func TestBuilderImplicitTickAndIdle(t *testing.T) {
	b := NewBuilder()
	b.Events("x") // implicit Tick
	tr := b.Idle(2).Build()
	if len(tr) != 3 {
		t.Fatalf("len = %d", len(tr))
	}
	if !tr[0].Event("x") || !tr[1].IsEmpty() || !tr[2].IsEmpty() {
		t.Error("implicit tick or idle wrong")
	}
	// Builder restarts after Build.
	tr2 := b.Tick().Events("y").Build()
	if len(tr2) != 1 || !tr2[0].Event("y") {
		t.Error("builder reuse broken")
	}
}

func TestBuilderAppendAndLen(t *testing.T) {
	base := NewBuilder().Tick().Events("a").Build()
	b := NewBuilder().Tick().Events("z")
	if b.Len() != 1 {
		t.Errorf("len = %d", b.Len())
	}
	tr := b.Append(base).Build()
	if len(tr) != 2 || !tr[1].Event("a") {
		t.Error("append wrong")
	}
	// Appended states are deep copies.
	tr[1].Events["a"] = false
	if !base[0].Event("a") {
		t.Error("append aliased source")
	}
}

func TestCloneConcatWindow(t *testing.T) {
	a := NewBuilder().Tick().Events("x").Build()
	b := NewBuilder().Tick().Events("y").Tick().Events("z").Build()
	all := Concat(a, b)
	if len(all) != 3 || !all[2].Event("z") {
		t.Error("concat wrong")
	}
	c := all.Clone()
	c[0].Events["x"] = false
	if !all[0].Event("x") {
		t.Error("clone aliases")
	}
	w := all.Window(1, 2)
	if len(w) != 2 || !w[0].Event("y") {
		t.Error("window wrong")
	}
	if s := all.String(); !strings.Contains(s, "0:") || !strings.Contains(s, "{x}") {
		t.Errorf("string = %q", s)
	}
}

func newTestSupport(t *testing.T) *event.Support {
	t.Helper()
	sup, err := event.NewSupport([]event.Symbol{
		{Name: "a", Kind: event.KindEvent},
		{Name: "b", Kind: event.KindEvent},
		{Name: "p", Kind: event.KindProp},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

func TestGeneratorDeterministic(t *testing.T) {
	sup := newTestSupport(t)
	a := NewGenerator(sup, 99, 0.5).Trace(50)
	b := NewGenerator(sup, 99, 0.5).Trace(50)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("diverged at %d", i)
		}
	}
	c := NewGenerator(sup, 100, 0.5).Trace(50)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorDensityClamps(t *testing.T) {
	sup := newTestSupport(t)
	zero := NewGenerator(sup, 1, -0.5).Trace(20)
	for _, s := range zero {
		if !s.IsEmpty() {
			t.Fatal("density 0 produced events")
		}
	}
	one := NewGenerator(sup, 1, 2.0).Trace(20)
	for _, s := range one {
		if !s.Event("a") || !s.Event("b") || !s.Prop("p") {
			t.Fatal("density 1 missed symbols")
		}
	}
}

func TestEmbed(t *testing.T) {
	sup := newTestSupport(t)
	g := NewGenerator(sup, 5, 0.3)
	tr := g.Trace(10)
	window := NewBuilder().Tick().Events("a").Tick().Events("b").Build()
	Embed(tr, 4, window)
	if !tr[4].Event("a") || !tr[5].Event("b") {
		t.Error("embed failed")
	}
	if g.Intn(10) < 0 {
		t.Error("Intn broken")
	}
	if g.Valuation() > event.Valuation(sup.NumValuations()-1) {
		t.Error("valuation out of range")
	}
	if g.State().Events == nil {
		t.Error("state has nil map")
	}
}

func TestGlobalTraceProjectDomainsValidate(t *testing.T) {
	mk := func(ev string) event.State { return event.NewState().WithEvents(ev) }
	g := GlobalTrace{
		{Time: 0, Domain: "a", State: mk("x")},
		{Time: 1, Domain: "b", State: mk("y")},
		{Time: 2, Domain: "a", State: mk("z")},
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	pa := g.Project("a")
	if len(pa) != 2 || !pa[1].Event("z") {
		t.Error("projection wrong")
	}
	doms := g.Domains()
	if len(doms) != 2 || doms[0] != "a" || doms[1] != "b" {
		t.Errorf("domains = %v", doms)
	}
	bad := GlobalTrace{{Time: 5, Domain: "a"}, {Time: 2, Domain: "a"}}
	if err := bad.Validate(); err == nil {
		t.Error("unordered trace accepted")
	}
}

func TestInterleave(t *testing.T) {
	mk := func(ev string) event.State { return event.NewState().WithEvents(ev) }
	g, err := Interleave(
		[]string{"fast", "slow"},
		map[string]int64{"fast": 2, "slow": 5},
		map[string]int64{"fast": 0, "slow": 1},
		map[string]Trace{
			"fast": {mk("f0"), mk("f1"), mk("f2")},
			"slow": {mk("s0"), mk("s1")},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// fast at 0,2,4; slow at 1,6.
	wantTimes := []int64{0, 1, 2, 4, 6}
	wantDoms := []string{"fast", "slow", "fast", "fast", "slow"}
	if len(g) != len(wantTimes) {
		t.Fatalf("len = %d, want %d", len(g), len(wantTimes))
	}
	for i := range g {
		if g[i].Time != wantTimes[i] || g[i].Domain != wantDoms[i] {
			t.Errorf("tick %d = %s@%d, want %s@%d", i, g[i].Domain, g[i].Time, wantDoms[i], wantTimes[i])
		}
	}
}

func TestInterleaveErrors(t *testing.T) {
	if _, err := Interleave([]string{"x"}, map[string]int64{"x": 1}, nil, map[string]Trace{}); err == nil {
		t.Error("missing trace accepted")
	}
	if _, err := Interleave([]string{"x"}, map[string]int64{"x": 0}, nil,
		map[string]Trace{"x": {event.NewState()}}); err == nil {
		t.Error("zero period accepted")
	}
}

func TestWriteVCD(t *testing.T) {
	tr := NewBuilder().
		Tick().Events("req").Props("busy").
		Tick().Events("ack").
		Tick().
		Build()
	var sb strings.Builder
	if err := WriteVCD(&sb, "dut", tr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$scope module dut", "$var wire 1", "req", "ack", "busy",
		"$dumpvars", "#0", "#1", "#2", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// Empty module name defaults.
	var sb2 strings.Builder
	if err := WriteVCD(&sb2, "", tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "module trace") {
		t.Error("default module name missing")
	}
}

func TestVCDCodes(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		c := vcdCode(i)
		if c == "" || seen[c] {
			t.Fatalf("code %d = %q duplicate/empty", i, c)
		}
		seen[c] = true
	}
}
