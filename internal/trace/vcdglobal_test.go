package trace

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func TestWriteGlobalVCD(t *testing.T) {
	mk := func(tm int64, dom string, evs ...string) GlobalTick {
		return GlobalTick{Time: tm, Domain: dom, State: event.NewState().WithEvents(evs...)}
	}
	g := GlobalTrace{
		mk(0, "clk1", "req"),
		mk(1, "clk2"),
		mk(4, "clk1", "data"),
		mk(5, "clk2", "serve"),
	}
	var sb strings.Builder
	if err := WriteGlobalVCD(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$scope module clk1", "$scope module clk2",
		"tick $end", "req $end", "data $end", "serve $end",
		"#0", "#1", "#4", "#5", "#6",
		"$dumpvars",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("global VCD missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGlobalVCDRejectsUnordered(t *testing.T) {
	g := GlobalTrace{
		{Time: 5, Domain: "a", State: event.NewState()},
		{Time: 1, Domain: "a", State: event.NewState()},
	}
	var sb strings.Builder
	if err := WriteGlobalVCD(&sb, g); err == nil {
		t.Error("unordered global trace accepted")
	}
}

func TestWriteGlobalVCDEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteGlobalVCD(&sb, nil); err != nil {
		t.Fatalf("empty trace errored: %v", err)
	}
	if !strings.Contains(sb.String(), "$enddefinitions") {
		t.Error("header missing for empty trace")
	}
}

func TestWriteGlobalVCDPulsesDrop(t *testing.T) {
	mk := func(tm int64, dom string, evs ...string) GlobalTick {
		return GlobalTick{Time: tm, Domain: dom, State: event.NewState().WithEvents(evs...)}
	}
	g := GlobalTrace{
		mk(0, "clk1", "req"),
		mk(2, "clk1"),
	}
	var sb strings.Builder
	if err := WriteGlobalVCD(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The req pulse raised at #0 must be lowered at #2.
	idx0 := strings.Index(out, "#0")
	idx2 := strings.Index(out, "#2")
	if idx0 < 0 || idx2 < 0 || idx2 < idx0 {
		t.Fatalf("time markers wrong:\n%s", out)
	}
	after2 := out[idx2:]
	if !strings.Contains(after2, "0") {
		t.Errorf("no falling edges after #2:\n%s", out)
	}
}
