package trace

import (
	"math/rand"

	"repro/internal/event"
)

// Generator produces pseudo-random traces over a fixed support, for
// property-based tests and workload benches. All randomness is derived
// from the caller-supplied seed, so generation is reproducible.
type Generator struct {
	sup     *event.Support
	rng     *rand.Rand
	density float64
}

// NewGenerator returns a generator over sup with the given seed. density
// is the probability that any given symbol is true at a tick; it is
// clamped to [0, 1].
func NewGenerator(sup *event.Support, seed int64, density float64) *Generator {
	if density < 0 {
		density = 0
	}
	if density > 1 {
		density = 1
	}
	return &Generator{sup: sup, rng: rand.New(rand.NewSource(seed)), density: density}
}

// State draws one random state.
func (g *Generator) State() event.State {
	var v event.Valuation
	for i := 0; i < g.sup.Len(); i++ {
		v = v.SetBit(i, g.rng.Float64() < g.density)
	}
	return g.sup.State(v)
}

// Trace draws a random trace of n ticks.
func (g *Generator) Trace(n int) Trace {
	out := make(Trace, n)
	for i := range out {
		out[i] = g.State()
	}
	return out
}

// Valuation draws one random valuation over the support.
func (g *Generator) Valuation() event.Valuation {
	var v event.Valuation
	for i := 0; i < g.sup.Len(); i++ {
		v = v.SetBit(i, g.rng.Float64() < g.density)
	}
	return v
}

// Intn exposes the underlying source for callers needing correlated
// random choices (e.g. picking an embedding offset).
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// Embed overwrites t[at:at+len(window)] with a copy of window, returning
// t for chaining. It panics if the window does not fit.
func Embed(t Trace, at int, window Trace) Trace {
	for i, s := range window {
		t[at+i] = s.Clone()
	}
	return t
}
