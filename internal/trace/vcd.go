package trace

import (
	"fmt"
	"io"
	"sort"
)

// WriteVCD dumps a single-clock trace as a Value Change Dump file so that
// captured protocol runs can be inspected in standard waveform viewers.
// Every symbol appearing anywhere in the trace becomes a 1-bit wire;
// events pulse high for the tick at which they occur. Timescale is one
// tick per time unit.
func WriteVCD(w io.Writer, module string, t Trace) error {
	names := collectNames(t)
	if module == "" {
		module = "trace"
	}
	codes := make(map[string]string, len(names))
	for i, n := range names {
		codes[n] = vcdCode(i)
	}
	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", module); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", codes[n], n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}
	prev := make(map[string]bool, len(names))
	for _, n := range names {
		prev[n] = false
	}
	// Initial dump.
	if _, err := fmt.Fprint(w, "#0\n$dumpvars\n"); err != nil {
		return err
	}
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "0%s\n", codes[n]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$end\n"); err != nil {
		return err
	}
	for tick, s := range t {
		wrote := false
		for _, n := range names {
			cur := s.Event(n) || s.Prop(n)
			if cur != prev[n] {
				if !wrote {
					if _, err := fmt.Fprintf(w, "#%d\n", tick); err != nil {
						return err
					}
					wrote = true
				}
				bit := "0"
				if cur {
					bit = "1"
				}
				if _, err := fmt.Fprintf(w, "%s%s\n", bit, codes[n]); err != nil {
					return err
				}
				prev[n] = cur
			}
		}
	}
	_, err := fmt.Fprintf(w, "#%d\n", len(t))
	return err
}

func collectNames(t Trace) []string {
	seen := make(map[string]bool)
	for _, s := range t {
		for n := range s.Events {
			seen[n] = true
		}
		for n := range s.Props {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// vcdCode maps an index to a short printable identifier code.
func vcdCode(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
	var out []byte
	for {
		out = append(out, alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			break
		}
		i--
	}
	return string(out)
}
