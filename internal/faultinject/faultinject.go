// Package faultinject is a small deterministic fault plane: named
// injection points scattered through production code paths (WAL writes,
// ingest handlers, monitor stepping) that a test wires to a seeded
// schedule of errors, latencies, and panics. Production runs pass a nil
// *Plane and every Hit call is a nil-check away from free; tests get
// reproducible fault sequences instead of hoping a crash window lines
// up. This is how the recovery, quarantine, and retry paths are proved
// rather than assumed (see internal/server and internal/client tests).
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind selects what firing a rule does at the injection point.
type Kind int

const (
	// KindError makes Hit return the rule's Err.
	KindError Kind = iota
	// KindLatency makes Hit sleep for the rule's Delay, then continue.
	KindLatency
	// KindPanic makes Hit panic with a *Injected value. Call sites that
	// quarantine (recover) use this to prove their recovery path.
	KindPanic
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injected is the panic value of KindPanic rules, so recover sites can
// distinguish injected panics in test assertions.
type Injected struct {
	Point string
}

// Error lets Injected double as the default KindError error.
func (i *Injected) Error() string { return "faultinject: injected fault at " + i.Point }

// Rule schedules faults at one injection point. The schedule is
// counted, not timed: the rule looks at how many times the point has
// been hit, so a fixed seed plus a fixed workload yields the exact same
// fault sequence on every run.
type Rule struct {
	// Point is the injection point name, e.g. "wal.append".
	Point string
	// Kind is what firing does (error / latency / panic).
	Kind Kind
	// After skips the first After hits of the point.
	After int
	// Every fires on every Every-th eligible hit (1 = every hit).
	// Zero means fire exactly once (on the first eligible hit).
	Every int
	// Count caps the total number of fires (0 = unlimited).
	Count int
	// Prob, when in (0,1), additionally gates each eligible fire on the
	// plane's seeded RNG — deterministic for a fixed seed and hit order.
	Prob float64
	// Err is returned by KindError fires (default: *Injected).
	Err error
	// Delay is slept by KindLatency fires.
	Delay time.Duration
}

type ruleState struct {
	Rule
	fires int
}

// Plane is a set of scheduled rules plus per-point hit counters. The
// zero of *Plane (nil) is a valid, completely inert plane.
type Plane struct {
	mu    sync.Mutex
	rng   *rand.Rand
	hits  map[string]int
	rules []*ruleState
}

// New returns a plane whose probabilistic gates draw from a rand source
// seeded with seed.
func New(seed int64) *Plane {
	return &Plane{
		rng:  rand.New(rand.NewSource(seed)),
		hits: make(map[string]int),
	}
}

// Add registers a rule and returns the plane for chaining.
func (p *Plane) Add(r Rule) *Plane {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, &ruleState{Rule: r})
	return p
}

// Hit announces that execution reached the named injection point. It
// returns the injected error (KindError), sleeps then returns nil
// (KindLatency), panics (KindPanic), or returns nil when no rule fires.
// A nil plane always returns nil. Rules are evaluated in Add order; the
// first one that fires wins.
func (p *Plane) Hit(point string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.hits[point]++
	n := p.hits[point]
	var fired *ruleState
	for _, r := range p.rules {
		if r.Point != point {
			continue
		}
		if !r.due(n) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && p.rng.Float64() >= r.Prob {
			continue
		}
		r.fires++
		fired = r
		break
	}
	p.mu.Unlock()
	if fired == nil {
		return nil
	}
	switch fired.Kind {
	case KindLatency:
		time.Sleep(fired.Delay)
		return nil
	case KindPanic:
		panic(&Injected{Point: point})
	default:
		if fired.Err != nil {
			return fired.Err
		}
		return &Injected{Point: point}
	}
}

// HitBatch announces that execution is about to process the named
// injection point once for a whole batch of n ticks. The batch counts
// as a single hit — counted schedules (After/Every/Count) advance per
// batch, not per tick, so a crash-at-every-batch campaign hits every
// batch exactly once no matter how traffic was chunked. When a rule
// fires, HitBatch picks a deterministic in-batch offset from the
// plane's seeded RNG and returns it with a closure that performs the
// fault's effect; the caller invokes do immediately before processing
// tick offset, landing the fault on exactly one tick so conformance
// bisection still resolves a single-tick boundary. A nil do means no
// rule fired (offset is -1).
func (p *Plane) HitBatch(point string, n int) (offset int, do func() error) {
	if p == nil || n <= 0 {
		return -1, nil
	}
	p.mu.Lock()
	p.hits[point]++
	hit := p.hits[point]
	var fired *ruleState
	for _, r := range p.rules {
		if r.Point != point {
			continue
		}
		if !r.due(hit) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && p.rng.Float64() >= r.Prob {
			continue
		}
		r.fires++
		fired = r
		break
	}
	if fired == nil {
		p.mu.Unlock()
		return -1, nil
	}
	offset = p.rng.Intn(n)
	p.mu.Unlock()
	kind, delay, err := fired.Kind, fired.Delay, fired.Err
	return offset, func() error {
		switch kind {
		case KindLatency:
			time.Sleep(delay)
			return nil
		case KindPanic:
			panic(&Injected{Point: point})
		default:
			if err != nil {
				return err
			}
			return &Injected{Point: point}
		}
	}
}

// due reports whether the rule's counted schedule selects hit number n
// (1-based), before the probabilistic gate.
func (r *ruleState) due(n int) bool {
	if r.Count > 0 && r.fires >= r.Count {
		return false
	}
	n -= r.After
	if n <= 0 {
		return false
	}
	if r.Every <= 0 {
		return r.fires == 0
	}
	return (n-1)%r.Every == 0
}

// Hits returns how many times the point has been reached.
func (p *Plane) Hits(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[point]
}

// Fires returns how many faults have fired at the point across all
// rules.
func (p *Plane) Fires(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, r := range p.rules {
		if r.Point == point {
			total += r.fires
		}
	}
	return total
}

// IsInjected reports whether a recovered panic value (or an error) came
// from this package.
func IsInjected(v any) bool {
	_, ok := v.(*Injected)
	return ok
}
