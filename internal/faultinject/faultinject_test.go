package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestNilPlane checks the inert nil plane is safe everywhere.
func TestNilPlane(t *testing.T) {
	var p *Plane
	if err := p.Hit("anything"); err != nil {
		t.Fatalf("nil plane Hit = %v", err)
	}
	if p.Hits("anything") != 0 || p.Fires("anything") != 0 {
		t.Fatal("nil plane has counters")
	}
}

// TestCountedSchedule checks After/Every/Count arithmetic: fires land on
// exactly the scheduled hit numbers, every run.
func TestCountedSchedule(t *testing.T) {
	p := New(1).Add(Rule{Point: "pt", Kind: KindError, After: 2, Every: 3, Count: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := p.Hit("pt"); err != nil {
			fired = append(fired, i)
		}
	}
	// Eligible hits are 3,6,9,12 (After 2, Every 3); Count 2 keeps 3 and 6.
	want := []int{3, 6}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if p.Hits("pt") != 12 || p.Fires("pt") != 2 {
		t.Fatalf("hits=%d fires=%d", p.Hits("pt"), p.Fires("pt"))
	}
}

// TestFireOnce checks Every=0 means a single fire.
func TestFireOnce(t *testing.T) {
	p := New(1).Add(Rule{Point: "pt", Kind: KindError})
	n := 0
	for i := 0; i < 5; i++ {
		if p.Hit("pt") != nil {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
}

// TestCustomError checks Err is returned verbatim and the default is an
// *Injected naming the point.
func TestCustomError(t *testing.T) {
	sentinel := errors.New("boom")
	p := New(1).
		Add(Rule{Point: "a", Kind: KindError, Err: sentinel, Every: 1}).
		Add(Rule{Point: "b", Kind: KindError, Every: 1})
	if err := p.Hit("a"); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	err := p.Hit("b")
	var inj *Injected
	if !errors.As(err, &inj) || inj.Point != "b" {
		t.Fatalf("err = %v, want *Injected{b}", err)
	}
}

// TestPanicKind checks KindPanic panics with an identifiable value.
func TestPanicKind(t *testing.T) {
	p := New(1).Add(Rule{Point: "pt", Kind: KindPanic, Every: 1})
	defer func() {
		v := recover()
		if !IsInjected(v) {
			t.Fatalf("recovered %v, want *Injected", v)
		}
	}()
	_ = p.Hit("pt")
	t.Fatal("Hit did not panic")
}

// TestLatencyKind checks KindLatency sleeps and does not error.
func TestLatencyKind(t *testing.T) {
	p := New(1).Add(Rule{Point: "pt", Kind: KindLatency, Delay: 20 * time.Millisecond, Every: 1})
	start := time.Now()
	if err := p.Hit("pt"); err != nil {
		t.Fatalf("latency Hit = %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("slept %v, want >= 20ms", d)
	}
}

// TestSeededProbDeterministic checks the probabilistic gate replays
// identically for a fixed seed.
func TestSeededProbDeterministic(t *testing.T) {
	run := func() []int {
		p := New(42).Add(Rule{Point: "pt", Kind: KindError, Every: 1, Prob: 0.3})
		var fired []int
		for i := 1; i <= 200; i++ {
			if p.Hit("pt") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob gate degenerate: %d fires of 200", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at fire %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestHitBatchSchedule checks batch hits advance counted schedules per
// batch and land the fault on one deterministic in-batch offset.
func TestHitBatchSchedule(t *testing.T) {
	var p *Plane
	if off, do := p.HitBatch("pt", 64); off != -1 || do != nil {
		t.Fatal("nil plane fired")
	}
	p = New(7).Add(Rule{Point: "pt", Kind: KindError, After: 2, Every: 2, Count: 2})
	var offsets []int
	for batch := 1; batch <= 10; batch++ {
		off, do := p.HitBatch("pt", 64)
		if do == nil {
			continue
		}
		if off < 0 || off >= 64 {
			t.Fatalf("batch %d: offset %d out of range", batch, off)
		}
		if err := do(); err == nil {
			t.Fatalf("batch %d: fired rule returned nil", batch)
		}
		offsets = append(offsets, batch*1000+off)
	}
	if len(offsets) != 2 {
		t.Fatalf("fired %d times, want 2 (Count)", len(offsets))
	}
	if p.Hits("pt") != 10 {
		t.Fatalf("hits = %d, want 10 (one per batch)", p.Hits("pt"))
	}
	// Deterministic: an identically seeded plane replays the exact same
	// (batch, offset) schedule.
	q := New(7).Add(Rule{Point: "pt", Kind: KindError, After: 2, Every: 2, Count: 2})
	var replay []int
	for batch := 1; batch <= 10; batch++ {
		if off, do := q.HitBatch("pt", 64); do != nil {
			replay = append(replay, batch*1000+off)
		}
	}
	if len(replay) != len(offsets) {
		t.Fatalf("replay fired %d times, want %d", len(replay), len(offsets))
	}
	for i := range replay {
		if replay[i] != offsets[i] {
			t.Fatalf("replay schedule diverged: %v vs %v", replay, offsets)
		}
	}
}

// TestHitBatchPanicKind checks the returned closure carries the panic
// effect to the caller's chosen tick.
func TestHitBatchPanicKind(t *testing.T) {
	p := New(3).Add(Rule{Point: "pt", Kind: KindPanic})
	off, do := p.HitBatch("pt", 8)
	if do == nil || off < 0 || off >= 8 {
		t.Fatalf("off=%d fired=%v", off, do != nil)
	}
	defer func() {
		if !IsInjected(recover()) {
			t.Fatal("expected injected panic")
		}
	}()
	_ = do()
}
