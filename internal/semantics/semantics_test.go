package semantics

import (
	"reflect"
	"testing"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/trace"
)

func leaf(name string, events ...string) *chart.SCESC {
	sc := &chart.SCESC{ChartName: name, Clock: "clk"}
	for _, e := range events {
		sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{{Event: e}}})
	}
	return sc
}

func tr(ticks ...[]string) trace.Trace {
	b := trace.NewBuilder()
	for _, evs := range ticks {
		b.Tick().Events(evs...)
	}
	return b.Build()
}

func TestWindowMatchesSCESC(t *testing.T) {
	sc := leaf("ab", "a", "b")
	tx := tr([]string{"a"}, []string{"b"}, []string{"a"}, []string{"c"})
	if !WindowMatchesSCESC(sc, tx, 0) {
		t.Error("window 0 should match")
	}
	if WindowMatchesSCESC(sc, tx, 1) || WindowMatchesSCESC(sc, tx, 2) {
		t.Error("false window match")
	}
	if WindowMatchesSCESC(sc, tx, -1) || WindowMatchesSCESC(sc, tx, 3) {
		t.Error("out of range accepted")
	}
}

func TestMatchLengthsSeqAltParLoop(t *testing.T) {
	a := leaf("a", "a")
	b := leaf("b", "b")
	tx := tr([]string{"a"}, []string{"b"}, []string{"a", "b"})

	seq := &chart.Seq{Children: []chart.Chart{a, b}}
	if got := MatchLengths(seq, tx, 0); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("seq lengths = %v", got)
	}
	alt := &chart.Alt{Children: []chart.Chart{a, leaf("ab", "a", "b")}}
	if got := MatchLengths(alt, tx, 0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("alt lengths = %v", got)
	}
	par := &chart.Par{Children: []chart.Chart{a, b}}
	if got := MatchLengths(par, tx, 0); len(got) != 0 {
		t.Errorf("par over disjoint events matched: %v", got)
	}
	if got := MatchLengths(par, tx, 2); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("par at overlap tick = %v", got)
	}
	loop := &chart.Loop{Body: a, Min: 1, Max: 2}
	tx2 := tr([]string{"a"}, []string{"a"}, []string{"a"})
	if got := MatchLengths(loop, tx2, 0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("loop lengths = %v", got)
	}
	star := &chart.Loop{Body: a, Min: 0, Max: chart.Unbounded}
	if got := MatchLengths(star, tx2, 0); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("star lengths = %v", got)
	}
}

func TestMatchEndTicksAndContains(t *testing.T) {
	sc := leaf("ab", "a", "b")
	tx := tr([]string{"a"}, []string{"b"}, []string{"x"}, []string{"a"}, []string{"b"})
	ends := MatchEndTicks(sc, tx)
	if !reflect.DeepEqual(ends, []int{1, 4}) {
		t.Errorf("end ticks = %v", ends)
	}
	if !ContainsScenario(sc, tx) {
		t.Error("contains false")
	}
	if ContainsScenario(sc, tr([]string{"a"}, []string{"a"})) {
		t.Error("contains true on non-matching trace")
	}
}

func TestImpliesWindowSemantics(t *testing.T) {
	imp := &chart.Implies{Trigger: leaf("t", "req"), Consequent: leaf("c", "ack")}
	tx := tr([]string{"req"}, []string{"ack"})
	if got := MatchLengths(imp, tx, 0); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("implies window lengths = %v", got)
	}
}

func TestImpliesViolations(t *testing.T) {
	imp := &chart.Implies{Trigger: leaf("t", "req"), Consequent: leaf("c", "ack")}
	// req at 0 with ack at 1 (ok), req at 2 without ack at 3 (violation),
	// req at 4 with nothing after (pending, not violated).
	tx := tr([]string{"req"}, []string{"ack"}, []string{"req"}, []string{"x"}, []string{"req"})
	got := ImpliesViolations(imp, tx)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("violations = %v, want [2]", got)
	}
}

func TestGuardedLineSemantics(t *testing.T) {
	sc := &chart.SCESC{ChartName: "g", Clock: "clk", Lines: []chart.GridLine{
		{Events: []chart.EventSpec{{Event: "e", Guard: expr.Pr("p")}}},
	}}
	with := trace.NewBuilder().Tick().Events("e").Props("p").Build()
	without := trace.NewBuilder().Tick().Events("e").Build()
	if !WindowMatchesSCESC(sc, with, 0) {
		t.Error("guarded event with guard true rejected")
	}
	if WindowMatchesSCESC(sc, without, 0) {
		t.Error("guarded event without guard accepted")
	}
}

func TestMinWidth(t *testing.T) {
	a, b := leaf("a", "a"), leaf("b", "b", "b2")
	cases := []struct {
		c    chart.Chart
		want int
	}{
		{a, 1},
		{b, 2},
		{&chart.Seq{Children: []chart.Chart{a, b}}, 3},
		{&chart.Alt{Children: []chart.Chart{a, b}}, 1},
		{&chart.Par{Children: []chart.Chart{a, b}}, 2},
		{&chart.Loop{Body: b, Min: 2, Max: 4}, 4},
		{&chart.Implies{Trigger: a, Consequent: b}, 3},
	}
	for _, tc := range cases {
		if got := minWidth(tc.c); got != tc.want {
			t.Errorf("minWidth(%s) = %d, want %d", chart.Describe(tc.c), got, tc.want)
		}
	}
}

func TestAsyncSatisfied(t *testing.T) {
	l := leaf("l", "x")
	l.Clock = "c1"
	l.Lines[0].Events[0].Label = "e1"
	r := leaf("r", "y")
	r.Clock = "c2"
	r.Lines[0].Events[0].Label = "e2"
	a := &chart.Async{Children: []chart.Chart{l, r},
		CrossArrows: []chart.Arrow{{From: "e1", To: "e2"}}}

	mkTick := func(tm int64, dom, ev string) trace.GlobalTick {
		s := trace.NewBuilder().Tick().Events(ev).Build()[0]
		return trace.GlobalTick{Time: tm, Domain: dom, State: s}
	}
	good := trace.GlobalTrace{mkTick(0, "c1", "x"), mkTick(1, "c2", "y")}
	if w, ok := AsyncSatisfied(a, good); !ok || len(w.Starts) != 2 {
		t.Errorf("good trace rejected: %v %v", w, ok)
	}
	// Cross order violated: y before x.
	bad := trace.GlobalTrace{mkTick(0, "c2", "y"), mkTick(1, "c1", "x")}
	if _, ok := AsyncSatisfied(a, bad); ok {
		t.Error("causality-violating trace accepted")
	}
	// Missing domain activity.
	missing := trace.GlobalTrace{mkTick(0, "c1", "x")}
	if _, ok := AsyncSatisfied(a, missing); ok {
		t.Error("trace missing a domain accepted")
	}
}

func TestAsyncSatisfiedSimultaneousRejected(t *testing.T) {
	l := leaf("l", "x")
	l.Clock = "c1"
	l.Lines[0].Events[0].Label = "e1"
	r := leaf("r", "y")
	r.Clock = "c2"
	r.Lines[0].Events[0].Label = "e2"
	a := &chart.Async{Children: []chart.Chart{l, r},
		CrossArrows: []chart.Arrow{{From: "e1", To: "e2"}}}
	mkTick := func(tm int64, dom, ev string) trace.GlobalTick {
		s := trace.NewBuilder().Tick().Events(ev).Build()[0]
		return trace.GlobalTick{Time: tm, Domain: dom, State: s}
	}
	// Equal global times: strict precedence fails.
	sim := trace.GlobalTrace{mkTick(5, "c1", "x"), mkTick(5, "c2", "y")}
	if _, ok := AsyncSatisfied(a, sim); ok {
		t.Error("simultaneous cross-arrow endpoints accepted")
	}
}
