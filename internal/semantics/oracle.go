package semantics

import (
	"sort"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/trace"
)

// Oracle is MatchLengths/MatchEndTicks with memoization over one fixed
// trace. The naive functions recompute child match sets once per start
// position; a conformance campaign asks for every start position of
// every subterm, which makes the naive oracle quadratic-times-chart-size
// per trace. The oracle caches match sets keyed by (subterm, start), so
// each pair is computed once. Results are identical to the naive
// functions (agreement-tested).
type Oracle struct {
	tr   trace.Trace
	memo map[oracleKey]map[int]bool
}

type oracleKey struct {
	node chart.Chart
	from int
}

// NewOracle prepares a memoized oracle for one trace. Charts passed to
// its methods may be shared across calls; subterm identity (pointer
// equality) is the cache key, so mutating a chart after use requires a
// fresh Oracle.
func NewOracle(tr trace.Trace) *Oracle {
	return &Oracle{tr: tr, memo: make(map[oracleKey]map[int]bool)}
}

// MatchLengths is the memoized equivalent of the package-level
// MatchLengths over the oracle's trace.
func (o *Oracle) MatchLengths(c chart.Chart, from int) []int {
	set := o.matchSet(c, from)
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// EndTicks is the memoized equivalent of MatchEndTicks.
func (o *Oracle) EndTicks(c chart.Chart) []int {
	ends := make(map[int]bool)
	for from := 0; from <= len(o.tr); from++ {
		for l := range o.matchSet(c, from) {
			if l > 0 {
				ends[from+l-1] = true
			}
		}
	}
	out := make([]int, 0, len(ends))
	for t := range ends {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Contains is the memoized equivalent of ContainsScenario.
func (o *Oracle) Contains(c chart.Chart) bool {
	for from := 0; from <= len(o.tr); from++ {
		for l := range o.matchSet(c, from) {
			if l > 0 {
				return true
			}
		}
	}
	return false
}

// ImpliesViolations is the memoized equivalent of the package-level
// ImpliesViolations.
func (o *Oracle) ImpliesViolations(v *chart.Implies) []int {
	var out []int
	for from := 0; from <= len(o.tr); from++ {
		for tl := range o.matchSet(v.Trigger, from) {
			if tl == 0 {
				continue
			}
			start := from + tl
			ok := false
			for d := 0; d <= v.MaxDelay && !ok; d++ {
				for cl := range o.matchSet(v.Consequent, start+d) {
					if cl > 0 {
						ok = true
						break
					}
				}
			}
			if !ok && consequentCouldFit(v.Consequent, o.tr, start+v.MaxDelay) {
				out = append(out, from+tl-1)
			}
		}
	}
	sort.Ints(out)
	return out
}

func (o *Oracle) matchSet(c chart.Chart, from int) map[int]bool {
	key := oracleKey{c, from}
	if cached, ok := o.memo[key]; ok {
		return cached
	}
	out := make(map[int]bool)
	// Insert before recursing: charts consume at least one tick per
	// nesting level, so no cycle can revisit (c, from), but claiming the
	// slot early keeps a buggy chart from looping the oracle forever.
	o.memo[key] = out
	tr := o.tr
	switch v := c.(type) {
	case *chart.SCESC:
		if WindowMatchesSCESC(v, tr, from) {
			out[v.NumTicks()] = true
		}
	case *chart.Seq:
		cur := map[int]bool{0: true}
		for _, ch := range v.Children {
			next := make(map[int]bool)
			for off := range cur {
				for l := range o.matchSet(ch, from+off) {
					next[off+l] = true
				}
			}
			cur = next
			if len(cur) == 0 {
				break
			}
		}
		for l := range cur {
			out[l] = true
		}
	case *chart.Alt:
		for _, ch := range v.Children {
			for l := range o.matchSet(ch, from) {
				out[l] = true
			}
		}
	case *chart.Par:
		var acc map[int]bool
		for i, ch := range v.Children {
			ls := o.matchSet(ch, from)
			if i == 0 {
				acc = make(map[int]bool, len(ls))
				for l := range ls {
					acc[l] = true
				}
				continue
			}
			for l := range acc {
				if !ls[l] {
					delete(acc, l)
				}
			}
		}
		for l := range acc {
			out[l] = true
		}
	case *chart.Loop:
		cur := map[int]bool{0: true}
		if v.Min == 0 {
			out[0] = true
		}
		reps := 0
		for {
			reps++
			if v.Max != chart.Unbounded && reps > v.Max {
				break
			}
			next := make(map[int]bool)
			for off := range cur {
				for l := range o.matchSet(v.Body, from+off) {
					next[off+l] = true
				}
			}
			if len(next) == 0 {
				break
			}
			if reps >= v.Min {
				for l := range next {
					out[l] = true
				}
			}
			cur = next
			if reps > len(tr)+1 {
				break
			}
		}
	case *chart.Implies:
		for tl := range o.matchSet(v.Trigger, from) {
			for d := 0; d <= v.MaxDelay; d++ {
				for cl := range o.matchSet(v.Consequent, from+tl+d) {
					out[tl+d+cl] = true
				}
			}
		}
	case *chart.Async:
		// No single-trace window semantics; see AsyncSatisfied.
	}
	return out
}

// WindowSatisfiable reports whether any window of any trace could
// satisfy c, by checking every grid line of every leaf for
// satisfiability. Unsatisfiable leaves under an Alt are fine; this is a
// cheap generator-side sanity check, not part of the run semantics.
func WindowSatisfiable(sc *chart.SCESC) bool {
	for _, line := range sc.Lines {
		if sat, err := expr.SatAuto(line.Expr()); err != nil || !sat {
			return false
		}
	}
	return true
}
