package semantics

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/chart"
	"repro/internal/gen"
)

// TestOracleAgreesWithNaive pins the memoized oracle to the naive
// reference functions over a spread of generated charts and adversarial
// traces: same match lengths at every start, same end ticks, same
// containment verdict, and for implications the same violation ticks.
func TestOracleAgreesWithNaive(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := gen.New(seed, gen.Config{})
		c := g.Chart()
		sup, err := gen.Support(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := g.Trace(c, sup, 30)
		o := NewOracle(tr)
		for from := 0; from <= len(tr); from++ {
			want := MatchLengths(c, tr, from)
			got := o.MatchLengths(c, from)
			if !sameInts(want, got) {
				t.Fatalf("seed %d from %d: lengths naive=%v oracle=%v\nchart: %s",
					seed, from, want, got, chart.Describe(c))
			}
		}
		if want, got := MatchEndTicks(c, tr), o.EndTicks(c); !sameInts(want, got) {
			t.Fatalf("seed %d: ends naive=%v oracle=%v", seed, want, got)
		}
		if want, got := ContainsScenario(c, tr), o.Contains(c); want != got {
			t.Fatalf("seed %d: contains naive=%v oracle=%v", seed, want, got)
		}
		if imp, ok := c.(*chart.Implies); ok {
			// Neither implementation promises an order or dedup for
			// violation ticks; compare the sets.
			want := normalize(ImpliesViolations(imp, tr))
			got := normalize(o.ImpliesViolations(imp))
			if !sameInts(want, got) {
				t.Fatalf("seed %d: violations naive=%v oracle=%v", seed, want, got)
			}
		}
	}
}

func normalize(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func sameInts(a, b []int) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
