// Package semantics implements the denotational reference semantics of
// CESC as a direct (non-automaton) matcher over runs. It is the oracle
// against which the synthesized monitors are validated: the paper's
// correctness result states [[C]] = Sigma* . L(M) . Sigma^omega, i.e. a
// run satisfies chart C iff some finite window of it is a word of the
// monitor's language. This package decides the left-hand side by direct
// interval matching, with none of the automaton machinery, so agreement
// with the monitors is meaningful evidence of correctness.
package semantics

import (
	"sort"

	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/trace"
)

// WindowMatchesSCESC reports whether the window of tr starting at `from`
// satisfies every grid line of sc (and hence, by tick ordering, all of
// its causality arrows).
func WindowMatchesSCESC(sc *chart.SCESC, tr trace.Trace, from int) bool {
	n := sc.NumTicks()
	if from < 0 || from+n > len(tr) {
		return false
	}
	for i, line := range sc.Lines {
		if !expr.EvalState(line.Expr(), tr[from+i]) {
			return false
		}
	}
	return true
}

// MatchLengths returns the sorted set of window lengths L such that the
// window tr[from : from+L] satisfies chart c. This is the compositional
// core: sequential composition folds the sets, alternatives union them,
// overlays intersect them, loops iterate them.
func MatchLengths(c chart.Chart, tr trace.Trace, from int) []int {
	set := matchSet(c, tr, from)
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

func matchSet(c chart.Chart, tr trace.Trace, from int) map[int]bool {
	out := make(map[int]bool)
	switch v := c.(type) {
	case *chart.SCESC:
		if WindowMatchesSCESC(v, tr, from) {
			out[v.NumTicks()] = true
		}
	case *chart.Seq:
		cur := map[int]bool{0: true}
		for _, ch := range v.Children {
			next := make(map[int]bool)
			for off := range cur {
				for l := range matchSet(ch, tr, from+off) {
					next[off+l] = true
				}
			}
			cur = next
			if len(cur) == 0 {
				break
			}
		}
		for l := range cur {
			out[l] = true
		}
	case *chart.Alt:
		for _, ch := range v.Children {
			for l := range matchSet(ch, tr, from) {
				out[l] = true
			}
		}
	case *chart.Par:
		var acc map[int]bool
		for _, ch := range v.Children {
			ls := matchSet(ch, tr, from)
			if acc == nil {
				acc = ls
				continue
			}
			for l := range acc {
				if !ls[l] {
					delete(acc, l)
				}
			}
		}
		for l := range acc {
			out[l] = true
		}
	case *chart.Loop:
		// reach[i] = set of offsets reachable with exactly i repetitions.
		cur := map[int]bool{0: true}
		if v.Min == 0 {
			out[0] = true
		}
		reps := 0
		for {
			reps++
			if v.Max != chart.Unbounded && reps > v.Max {
				break
			}
			next := make(map[int]bool)
			for off := range cur {
				for l := range matchSet(v.Body, tr, from+off) {
					next[off+l] = true
				}
			}
			if len(next) == 0 {
				break
			}
			if reps >= v.Min {
				for l := range next {
					out[l] = true
				}
			}
			cur = next
			// Every chart body consumes at least one tick, so offsets grow
			// strictly and the loop terminates within len(tr) iterations.
			if reps > len(tr)+1 {
				break
			}
		}
	case *chart.Implies:
		// As a window language, an implication instance is the trigger
		// window followed (within the deadline) by the consequent window.
		for tl := range matchSet(v.Trigger, tr, from) {
			for d := 0; d <= v.MaxDelay; d++ {
				for cl := range matchSet(v.Consequent, tr, from+tl+d) {
					out[tl+d+cl] = true
				}
			}
		}
	case *chart.Async:
		// Multi-clock charts have no single-trace window semantics; see
		// AsyncSatisfied.
	}
	return out
}

// MatchEndTicks returns every tick t such that some window of tr ending
// at t (inclusive) satisfies c. These are exactly the ticks at which a
// correct detector must accept.
func MatchEndTicks(c chart.Chart, tr trace.Trace) []int {
	ends := make(map[int]bool)
	for from := 0; from <= len(tr); from++ {
		for _, l := range MatchLengths(c, tr, from) {
			if l > 0 {
				ends[from+l-1] = true
			}
		}
	}
	out := make([]int, 0, len(ends))
	for t := range ends {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// ContainsScenario reports whether any window of tr satisfies c — the
// finite-prefix reading of "the run is in [[C]]" (= Sigma* . L . Sigma^omega).
func ContainsScenario(c chart.Chart, tr trace.Trace) bool {
	for from := 0; from <= len(tr); from++ {
		if ls := MatchLengths(c, tr, from); len(ls) > 0 && ls[len(ls)-1] > 0 {
			return true
		}
	}
	return false
}

// ImpliesViolations returns the ticks at which a trigger window of the
// implication completed but no consequent window followed within the
// deadline — the assertion-mode reading of an Implies chart.
func ImpliesViolations(v *chart.Implies, tr trace.Trace) []int {
	var out []int
	for from := 0; from <= len(tr); from++ {
		for _, tl := range MatchLengths(v.Trigger, tr, from) {
			if tl == 0 {
				continue
			}
			start := from + tl
			ok := false
			for d := 0; d <= v.MaxDelay && !ok; d++ {
				for _, cl := range MatchLengths(v.Consequent, tr, start+d) {
					if cl > 0 {
						ok = true
						break
					}
				}
			}
			// Only count as a violation when the latest permitted
			// consequent window would fit in the observed prefix; an
			// undecided tail is pending, not failed.
			if !ok && consequentCouldFit(v.Consequent, tr, start+v.MaxDelay) {
				out = append(out, from+tl-1)
			}
		}
	}
	return out
}

func consequentCouldFit(c chart.Chart, tr trace.Trace, start int) bool {
	return start+minWidth(c) <= len(tr)
}

// minWidth returns the minimum number of ticks any window of c spans.
func minWidth(c chart.Chart) int {
	switch v := c.(type) {
	case *chart.SCESC:
		return v.NumTicks()
	case *chart.Seq:
		total := 0
		for _, ch := range v.Children {
			total += minWidth(ch)
		}
		return total
	case *chart.Alt:
		best := -1
		for _, ch := range v.Children {
			w := minWidth(ch)
			if best == -1 || w < best {
				best = w
			}
		}
		if best < 0 {
			return 0
		}
		return best
	case *chart.Par:
		best := 0
		for _, ch := range v.Children {
			if w := minWidth(ch); w > best {
				best = w
			}
		}
		return best
	case *chart.Loop:
		return v.Min * minWidth(v.Body)
	case *chart.Implies:
		return minWidth(v.Trigger) + minWidth(v.Consequent)
		// (the deadline adds optional, not mandatory, width)
	default:
		return 0
	}
}
