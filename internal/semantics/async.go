package semantics

import (
	"repro/internal/chart"
	"repro/internal/trace"
)

// AsyncWitness records where a multi-clock chart matched: per child, the
// start index of its window within its clock domain's projection.
type AsyncWitness struct {
	// Starts maps the child index to the start position of its window in
	// the domain projection.
	Starts []int
}

// domainInfo is one child's projected trace with per-element global times.
type domainInfo struct {
	proj  trace.Trace
	times []int64
}

// AsyncSatisfied reports whether the global trace contains a coherent
// multi-clock match of a: each asynchronous child matches a window of its
// own domain's projection, and every cross-domain causality arrow's
// source event occurs at a strictly earlier global time than its target
// event. This is the reference semantics for the paper's multi-clock
// monitors (local monitors synchronizing through the scoreboard on the
// global clock).
func AsyncSatisfied(a *chart.Async, g trace.GlobalTrace) (AsyncWitness, bool) {
	infos := make([]domainInfo, len(a.Children))
	for i, ch := range a.Children {
		clocks := ch.Clocks()
		if len(clocks) != 1 {
			return AsyncWitness{}, false
		}
		var di domainInfo
		for _, t := range g {
			if t.Domain == clocks[0] {
				di.proj = append(di.proj, t.State)
				di.times = append(di.times, t.Time)
			}
		}
		infos[i] = di
	}

	// Candidate window starts per child.
	cands := make([][]int, len(a.Children))
	for i, ch := range a.Children {
		for from := 0; from <= len(infos[i].proj); from++ {
			ls := MatchLengths(ch, infos[i].proj, from)
			if len(ls) > 0 && ls[len(ls)-1] > 0 {
				cands[i] = append(cands[i], from)
			}
		}
		if len(cands[i]) == 0 {
			return AsyncWitness{}, false
		}
	}

	// Search combinations for one satisfying all cross arrows.
	starts := make([]int, len(a.Children))
	var search func(i int) bool
	search = func(i int) bool {
		if i == len(a.Children) {
			return crossArrowsHold(a, infos, starts)
		}
		for _, s := range cands[i] {
			starts[i] = s
			if search(i + 1) {
				return true
			}
		}
		return false
	}
	if !search(0) {
		return AsyncWitness{}, false
	}
	w := AsyncWitness{Starts: make([]int, len(starts))}
	copy(w.Starts, starts)
	return w, true
}

// crossArrowsHold checks global-time ordering of each cross-domain arrow
// given the chosen window starts.
func crossArrowsHold(a *chart.Async, infos []domainInfo, starts []int) bool {
	for _, arr := range a.CrossArrows {
		srcT, ok := labelGlobalTime(a, infos, starts, arr.From)
		if !ok {
			return false
		}
		dstT, ok := labelGlobalTime(a, infos, starts, arr.To)
		if !ok {
			return false
		}
		if srcT >= dstT {
			return false
		}
	}
	return true
}

func labelGlobalTime(a *chart.Async, infos []domainInfo, starts []int, label string) (int64, bool) {
	for i, ch := range a.Children {
		sc, site, ok := findLabelWithOffset(ch, label)
		if !ok {
			continue
		}
		_ = sc
		pos := starts[i] + site
		if pos < 0 || pos >= len(infos[i].times) {
			return 0, false
		}
		return infos[i].times[pos], true
	}
	return 0, false
}

// findLabelWithOffset resolves a label to its absolute tick offset within
// the child's window, accounting for sequential composition of leaves.
func findLabelWithOffset(c chart.Chart, label string) (*chart.SCESC, int, bool) {
	switch v := c.(type) {
	case *chart.SCESC:
		if s, ok := v.Labels()[label]; ok {
			return v, s.Tick, true
		}
		return nil, 0, false
	case *chart.Seq:
		off := 0
		for _, ch := range v.Children {
			if sc, t, ok := findLabelWithOffset(ch, label); ok {
				return sc, off + t, true
			}
			off += minWidth(ch)
		}
		return nil, 0, false
	case *chart.Par:
		for _, ch := range v.Children {
			if sc, t, ok := findLabelWithOffset(ch, label); ok {
				return sc, t, true
			}
		}
		return nil, 0, false
	default:
		// Labels inside alternatives/loops have no fixed offset.
		return nil, 0, false
	}
}
