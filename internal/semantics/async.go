package semantics

import (
	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/trace"
)

// AsyncWitness records where a multi-clock chart matched: per child, the
// start index of its window within its clock domain's projection.
type AsyncWitness struct {
	// Starts maps the child index to the start position of its window in
	// the domain projection.
	Starts []int
}

// domainInfo is one child's projected trace with per-element global times.
type domainInfo struct {
	proj  trace.Trace
	times []int64
}

// AsyncSatisfied reports whether the global trace contains a coherent
// multi-clock match of a: each asynchronous child matches a window of its
// own domain's projection, and every cross-domain causality arrow's
// source event occurs at a strictly earlier global time than its target
// event. This is the reference semantics for the paper's multi-clock
// monitors (local monitors synchronizing through the scoreboard on the
// global clock).
func AsyncSatisfied(a *chart.Async, g trace.GlobalTrace) (AsyncWitness, bool) {
	infos := make([]domainInfo, len(a.Children))
	for i, ch := range a.Children {
		clocks := ch.Clocks()
		if len(clocks) != 1 {
			return AsyncWitness{}, false
		}
		var di domainInfo
		for _, t := range g {
			if t.Domain == clocks[0] {
				di.proj = append(di.proj, t.State)
				di.times = append(di.times, t.Time)
			}
		}
		infos[i] = di
	}

	// Candidate window starts per child.
	cands := make([][]int, len(a.Children))
	for i, ch := range a.Children {
		for from := 0; from <= len(infos[i].proj); from++ {
			ls := MatchLengths(ch, infos[i].proj, from)
			if len(ls) > 0 && ls[len(ls)-1] > 0 {
				cands[i] = append(cands[i], from)
			}
		}
		if len(cands[i]) == 0 {
			return AsyncWitness{}, false
		}
	}

	// Search combinations for one satisfying all cross arrows.
	starts := make([]int, len(a.Children))
	var search func(i int) bool
	search = func(i int) bool {
		if i == len(a.Children) {
			return crossArrowsHold(a, infos, starts)
		}
		for _, s := range cands[i] {
			starts[i] = s
			if search(i + 1) {
				return true
			}
		}
		return false
	}
	if !search(0) {
		return AsyncWitness{}, false
	}
	w := AsyncWitness{Starts: make([]int, len(starts))}
	copy(w.Starts, starts)
	return w, true
}

// crossArrowsHold checks global-time ordering of each cross-domain arrow
// given the chosen window starts.
func crossArrowsHold(a *chart.Async, infos []domainInfo, starts []int) bool {
	for _, arr := range a.CrossArrows {
		srcT, ok := labelGlobalTime(a, infos, starts, arr.From)
		if !ok {
			return false
		}
		dstT, ok := labelGlobalTime(a, infos, starts, arr.To)
		if !ok {
			return false
		}
		if srcT >= dstT {
			return false
		}
	}
	return true
}

func labelGlobalTime(a *chart.Async, infos []domainInfo, starts []int, label string) (int64, bool) {
	for i, ch := range a.Children {
		sc, site, ok := findLabelWithOffset(ch, label)
		if !ok {
			continue
		}
		_ = sc
		pos := starts[i] + site
		if pos < 0 || pos >= len(infos[i].times) {
			return 0, false
		}
		return infos[i].times[pos], true
	}
	return 0, false
}

// findLabelWithOffset resolves a label to its absolute tick offset within
// the child's window, accounting for sequential composition of leaves.
func findLabelWithOffset(c chart.Chart, label string) (*chart.SCESC, int, bool) {
	switch v := c.(type) {
	case *chart.SCESC:
		if s, ok := v.Labels()[label]; ok {
			return v, s.Tick, true
		}
		return nil, 0, false
	case *chart.Seq:
		off := 0
		for _, ch := range v.Children {
			if sc, t, ok := findLabelWithOffset(ch, label); ok {
				return sc, off + t, true
			}
			off += minWidth(ch)
		}
		return nil, 0, false
	case *chart.Par:
		for _, ch := range v.Children {
			if sc, t, ok := findLabelWithOffset(ch, label); ok {
				return sc, t, true
			}
		}
		return nil, 0, false
	default:
		// Labels inside alternatives/loops have no fixed offset.
		return nil, 0, false
	}
}

// AsyncWeaklyJustified is the necessary condition the scoreboard design
// actually guarantees for a coherent multi-domain accept, and therefore
// the soundness bound for differential testing of the executor. The
// strict single-combination semantics (AsyncSatisfied) is stronger than
// the implementation: a local monitor samples Chk_evt counts at its own
// tick, and a later hard reset of the source window reverses the add
// without retracting decisions already taken downstream. What a coherent
// accept does imply is:
//
//   - every child has at least one full window match in its projection
//     (the local accept, with the cross-arrow guards weakened away); and
//   - for every cross arrow, some source-domain tick satisfying the
//     labelled grid line precedes (in global processing order) the
//     labelled tick of some candidate destination window.
//
// A coherent accept with this predicate false is an executor bug.
func AsyncWeaklyJustified(a *chart.Async, g trace.GlobalTrace) bool {
	infos := make([]domainInfo, len(a.Children))
	// pos maps each projected tick back to its global-trace index — the
	// processing order the scoreboard observes (ties in global time are
	// broken by stream order, exactly as the executor does).
	pos := make([][]int, len(a.Children))
	for i, ch := range a.Children {
		clocks := ch.Clocks()
		if len(clocks) != 1 {
			return false
		}
		var di domainInfo
		for k, t := range g {
			if t.Domain == clocks[0] {
				di.proj = append(di.proj, t.State)
				di.times = append(di.times, t.Time)
				pos[i] = append(pos[i], k)
			}
		}
		infos[i] = di
	}
	cands := make([][]int, len(a.Children))
	for i, ch := range a.Children {
		for from := 0; from <= len(infos[i].proj); from++ {
			ls := MatchLengths(ch, infos[i].proj, from)
			if len(ls) > 0 && ls[len(ls)-1] > 0 {
				cands[i] = append(cands[i], from)
			}
		}
		if len(cands[i]) == 0 {
			return false
		}
	}
	for _, arr := range a.CrossArrows {
		if !weakArrowJustified(a, infos, pos, cands, arr.From, arr.To) {
			return false
		}
	}
	return true
}

// weakArrowJustified checks one cross arrow under the weak guarantee:
// the earliest source tick whose labelled grid line holds must precede
// the labelled tick of some candidate destination window.
func weakArrowJustified(a *chart.Async, infos []domainInfo, pos, cands [][]int, from, to string) bool {
	srcChild, srcLine, ok := labelLine(a, from)
	if !ok {
		return false
	}
	dstChild, dstOff, ok := labelChildOffset(a, to)
	if !ok {
		return false
	}
	srcEarliest := -1
	for j, st := range infos[srcChild].proj {
		if expr.EvalState(srcLine, st) {
			srcEarliest = pos[srcChild][j]
			break
		}
	}
	if srcEarliest < 0 {
		return false
	}
	for _, s := range cands[dstChild] {
		p := s + dstOff
		if p >= 0 && p < len(pos[dstChild]) && srcEarliest < pos[dstChild][p] {
			return true
		}
	}
	return false
}

// labelLine resolves a label to its child index and the grid-line
// conjunction of the labelled tick.
func labelLine(a *chart.Async, label string) (int, expr.Expr, bool) {
	for i, ch := range a.Children {
		if sc, site, ok := chart.FindLabel(ch, label); ok {
			if site.Tick < 0 || site.Tick >= len(sc.Lines) {
				return 0, nil, false
			}
			return i, sc.Lines[site.Tick].Expr(), true
		}
	}
	return 0, nil, false
}

// labelChildOffset resolves a label to its child index and absolute tick
// offset within that child's window.
func labelChildOffset(a *chart.Async, label string) (int, int, bool) {
	for i, ch := range a.Children {
		if _, off, ok := findLabelWithOffset(ch, label); ok {
			return i, off, true
		}
	}
	return 0, 0, false
}
