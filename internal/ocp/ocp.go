// Package ocp models the Open Core Protocol interface used by the
// paper's case studies (Section 6): a master/slave pair exchanging simple
// read transactions (Fig. 6, OCP spec p. 44) and pipelined burst read
// transactions (Fig. 7, OCP spec p. 49). The model is transaction-level
// and cycle-accurate at the observed interface: each tick emits the OCP
// events a bus monitor would sample, which is exactly what the
// synthesized monitors consume. Configurable fault injection perturbs
// the sequences for the bug-detection experiments.
package ocp

import (
	"math/rand"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/sim"
	"repro/internal/trace"
)

// OCP event names, following the paper's figures.
const (
	// Simple read (Fig. 6).
	EvMCmdRd     = "MCmd_rd"
	EvAddr       = "Addr"
	EvSCmdAccept = "SCmd_accept"
	EvSResp      = "SResp"
	EvSData      = "SData"

	// Pipelined burst read (Fig. 7).
	EvBMCmdRd = "MCmdRd"
	EvBurst4  = "Burst4"
	EvBurst3  = "Burst3"
	EvBurst2  = "Burst2"
	EvBurst1  = "Burst1"
)

// SimpleReadChart builds the Fig. 6 SCESC: request, address and accept in
// one cycle, response with data the next, with a causality arrow from the
// read command to the response.
func SimpleReadChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "ocp_simple_read",
		Clock:     "ocp_clk",
		Instances: []string{"Master", "Slave"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvMCmdRd, From: "Master", To: "Slave", Label: "cmd"},
				{Event: EvAddr, From: "Master", To: "Slave"},
				{Event: EvSCmdAccept, From: "Slave", To: "Master"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvSResp, From: "Slave", To: "Master", Label: "resp"},
				{Event: EvSData, From: "Slave", To: "Master"},
			}},
		},
		Arrows: []chart.Arrow{{From: "cmd", To: "resp"}},
	}
}

// BurstReadChart builds the Fig. 7 SCESC: a pipelined burst read of
// length 4. Requests with decreasing remaining-burst annotations issue on
// four consecutive cycles; responses overlap from the third cycle and
// drain over the last two. Causality arrows pair each request with its
// response, yielding the paper's scoreboard actions act1..act8.
func BurstReadChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "ocp_burst_read",
		Clock:     "ocp_clk",
		Instances: []string{"Master", "Slave"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{ // tick 0: first request, accepted
				{Event: EvBMCmdRd, Label: "m1", From: "Master", To: "Slave"},
				{Event: EvBurst4, Label: "b4", From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave"},
				{Event: EvSCmdAccept, From: "Slave", To: "Master"},
			}},
			{Events: []chart.EventSpec{ // tick 1: second request
				{Event: EvBMCmdRd, Label: "m2", From: "Master", To: "Slave"},
				{Event: EvBurst3, Label: "b3", From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave", Label: "a2"},
			}},
			{Events: []chart.EventSpec{ // tick 2: third request + first response
				{Event: EvBMCmdRd, Label: "m3", From: "Master", To: "Slave"},
				{Event: EvBurst2, Label: "b2", From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave", Label: "a3"},
				{Event: EvSResp, Label: "r1", From: "Slave", To: "Master"},
				{Event: EvSData, From: "Slave", To: "Master", Label: "d1"},
			}},
			{Events: []chart.EventSpec{ // tick 3: fourth request + second response
				{Event: EvBMCmdRd, Label: "m4", From: "Master", To: "Slave"},
				{Event: EvBurst1, Label: "b1", From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave", Label: "a4"},
				{Event: EvSResp, Label: "r2", From: "Slave", To: "Master"},
				{Event: EvSData, From: "Slave", To: "Master", Label: "d2"},
			}},
			{Events: []chart.EventSpec{ // tick 4: third response
				{Event: EvSResp, Label: "r3", From: "Slave", To: "Master"},
				{Event: EvSData, From: "Slave", To: "Master", Label: "d3"},
			}},
			{Events: []chart.EventSpec{ // tick 5: last response
				{Event: EvSResp, Label: "r4", From: "Slave", To: "Master"},
				{Event: EvSData, From: "Slave", To: "Master", Label: "d4"},
			}},
		},
		Arrows: []chart.Arrow{
			{From: "m1", To: "r1"}, {From: "b4", To: "r1"},
			{From: "m2", To: "r2"}, {From: "b3", To: "r2"},
			{From: "m3", To: "r3"}, {From: "b2", To: "r3"},
			{From: "m4", To: "r4"}, {From: "b1", To: "r4"},
		},
	}
}

// FaultKind enumerates injectable protocol deviations.
type FaultKind int

const (
	// FaultNone performs the transaction correctly.
	FaultNone FaultKind = iota
	// FaultDropResponse omits the SResp/SData cycle entirely.
	FaultDropResponse
	// FaultMissingData emits SResp without SData.
	FaultMissingData
	// FaultLateResponse delays the response by one extra cycle.
	FaultLateResponse
	// FaultDropAccept omits SCmd_accept on the request cycle.
	FaultDropAccept
	// FaultShortBurst issues only three of the four burst requests.
	FaultShortBurst
)

// String names the fault.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropResponse:
		return "drop-response"
	case FaultMissingData:
		return "missing-data"
	case FaultLateResponse:
		return "late-response"
	case FaultDropAccept:
		return "drop-accept"
	case FaultShortBurst:
		return "short-burst"
	default:
		return "fault?"
	}
}

// Config parameterizes the master/slave pair.
type Config struct {
	// Gap is the number of idle cycles between transactions.
	Gap int
	// Burst selects pipelined burst reads instead of simple reads.
	Burst bool
	// BurstLen sets the burst length (default 4, the paper's Figure 7).
	BurstLen int
	// Write selects posted writes instead of reads (ignored when Burst
	// is set).
	Write bool
	// AcceptDelay inserts that many wait states before the slave accepts
	// a write request (the master holds the request; see HandshakeChart).
	AcceptDelay int
	// FaultRate is the probability that a transaction is injected with a
	// fault drawn from FaultKinds.
	FaultRate float64
	// FaultKinds lists the faults to draw from (defaults to all
	// applicable kinds when empty).
	FaultKinds []FaultKind
	// Seed feeds the model's private PRNG.
	Seed int64
	// Source, when non-nil, supplies the model's randomness instead of a
	// fresh PRNG seeded with Seed — letting harnesses inject one shared,
	// reproducible stream across several models.
	Source rand.Source
}

// Model is an executable OCP master/slave pair producing the per-cycle
// event sets observed at the interface.
type Model struct {
	cfg Config
	rng *rand.Rand

	// future[i] holds events scheduled for the i-th upcoming cycle.
	future []event.State
	// idle counts remaining gap cycles before the next transaction.
	idle int
	// stats
	issued  int
	faulted int
}

// NewModel returns a model for cfg.
func NewModel(cfg Config) *Model {
	if cfg.Gap < 0 {
		cfg.Gap = 0
	}
	src := cfg.Source
	if src == nil {
		src = rand.NewSource(cfg.Seed)
	}
	m := &Model{cfg: cfg, rng: rand.New(src)}
	m.idle = 1 // settle one cycle before the first transaction
	return m
}

// Issued returns the number of transactions started.
func (m *Model) Issued() int { return m.issued }

// Faulted returns the number of transactions injected with a fault.
func (m *Model) Faulted() int { return m.faulted }

// at returns the scheduled state for cycle offset i, extending the queue.
func (m *Model) at(i int) event.State {
	for len(m.future) <= i {
		m.future = append(m.future, event.NewState())
	}
	return m.future[i]
}

func (m *Model) schedule(offset int, events ...string) {
	s := m.at(offset)
	for _, e := range events {
		s.Events[e] = true
	}
}

func (m *Model) pickFault() FaultKind {
	if m.cfg.FaultRate <= 0 || m.rng.Float64() >= m.cfg.FaultRate {
		return FaultNone
	}
	kinds := m.cfg.FaultKinds
	if len(kinds) == 0 {
		switch {
		case m.cfg.Burst:
			kinds = []FaultKind{FaultDropResponse, FaultMissingData, FaultLateResponse, FaultDropAccept, FaultShortBurst}
		case m.cfg.Write:
			// A write response carries no SData, so FaultMissingData
			// would be a no-op there.
			kinds = []FaultKind{FaultDropResponse, FaultLateResponse, FaultDropAccept}
		default:
			kinds = []FaultKind{FaultDropResponse, FaultMissingData, FaultLateResponse, FaultDropAccept}
		}
	}
	return kinds[m.rng.Intn(len(kinds))]
}

// startTransaction schedules the cycles of one transaction starting at
// offset 0 and returns its total length in cycles.
func (m *Model) startTransaction() int {
	m.issued++
	fault := m.pickFault()
	if fault != FaultNone {
		m.faulted++
	}
	if m.cfg.Burst {
		return m.startBurst(fault)
	}
	if m.cfg.Write {
		return m.startWrite(fault)
	}
	return m.startSimple(fault)
}

// startWrite schedules a posted write with the configured wait states:
// AcceptDelay cycles of the held request without accept, the accepted
// cycle, then the data-less response.
func (m *Model) startWrite(fault FaultKind) int {
	wait := m.cfg.AcceptDelay
	if wait < 0 {
		wait = 0
	}
	for i := 0; i < wait; i++ {
		m.schedule(i, EvMCmdWr, EvAddr)
	}
	req := []string{EvMCmdWr, EvAddr, EvMData, EvSCmdAccept}
	if fault == FaultDropAccept {
		req = req[:3]
	}
	m.schedule(wait, req...)
	respAt := wait + 1
	if fault == FaultLateResponse {
		respAt++
	}
	if fault != FaultDropResponse {
		m.schedule(respAt, EvSResp)
	}
	return respAt + 1
}

func (m *Model) startSimple(fault FaultKind) int {
	// Request cycle.
	req := []string{EvMCmdRd, EvAddr, EvSCmdAccept}
	if fault == FaultDropAccept {
		req = []string{EvMCmdRd, EvAddr}
	}
	m.schedule(0, req...)
	// Response cycle.
	respAt := 1
	if fault == FaultLateResponse {
		respAt = 2
	}
	switch fault {
	case FaultDropResponse:
		// nothing
	case FaultMissingData:
		m.schedule(respAt, EvSResp)
	default:
		m.schedule(respAt, EvSResp, EvSData)
	}
	if respAt >= 2 {
		return 3
	}
	return 2
}

func (m *Model) startBurst(fault FaultKind) int {
	n := m.cfg.BurstLen
	if n < 1 {
		n = 4 // the paper's Figure 7 burst
	}
	return m.startBurstN(n, fault)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Step produces the event state for the next cycle.
func (m *Model) Step() event.State {
	if len(m.future) == 0 && m.idle == 0 {
		busy := m.startTransaction()
		m.idle = busy + m.cfg.Gap
	}
	var out event.State
	if len(m.future) > 0 {
		out = m.future[0]
		m.future = m.future[1:]
	} else {
		out = event.NewState()
	}
	if m.idle > 0 {
		m.idle--
	}
	return out
}

// GenerateTrace runs the model for n cycles.
func (m *Model) GenerateTrace(n int) trace.Trace {
	out := make(trace.Trace, n)
	for i := range out {
		out[i] = m.Step()
	}
	return out
}

// Process adapts the model to a simulator process: each domain tick emits
// the model's next cycle onto the tick context.
func (m *Model) Process() sim.Process {
	return func(ctx *sim.TickCtx) {
		s := m.Step()
		for e, v := range s.Events {
			if v {
				ctx.Emit(e)
			}
		}
		for p, v := range s.Props {
			ctx.SetProp(p, v)
		}
	}
}
