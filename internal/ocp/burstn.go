package ocp

import (
	"fmt"

	"repro/internal/chart"
)

// BurstReadChartN generalizes Figure 7 to bursts of length n (n >= 1):
// n back-to-back requests annotated BurstN..Burst1, responses pipelined
// two cycles behind each request, and one causality pair per beat. n = 4
// reproduces the paper's chart exactly (modulo the fixed Burst4..Burst1
// names, which BurstEventName generates for any n).
func BurstReadChartN(n int) (*chart.SCESC, error) {
	if n < 1 {
		return nil, fmt.Errorf("ocp: burst length %d must be >= 1", n)
	}
	sc := &chart.SCESC{
		ChartName: fmt.Sprintf("ocp_burst_read_%d", n),
		Clock:     "ocp_clk",
		Instances: []string{"Master", "Slave"},
	}
	const respLag = 2
	total := n + respLag
	lines := make([]chart.GridLine, total)
	for i := 0; i < n; i++ {
		evs := []chart.EventSpec{
			{Event: EvBMCmdRd, Label: fmt.Sprintf("m%d", i+1), From: "Master", To: "Slave"},
			{Event: BurstEventName(n - i), Label: fmt.Sprintf("b%d", n-i), From: "Master", To: "Slave"},
			{Event: EvAddr, From: "Master", To: "Slave", Label: fmt.Sprintf("a%d", i+1)},
		}
		if i == 0 {
			evs = append(evs, chart.EventSpec{Event: EvSCmdAccept, From: "Slave", To: "Master"})
		}
		lines[i] = chart.GridLine{Events: evs}
	}
	for i := 0; i < n; i++ {
		at := i + respLag
		lines[at].Events = append(lines[at].Events,
			chart.EventSpec{Event: EvSResp, Label: fmt.Sprintf("r%d", i+1), From: "Slave", To: "Master"},
			chart.EventSpec{Event: EvSData, Label: fmt.Sprintf("d%d", i+1), From: "Slave", To: "Master"},
		)
	}
	sc.Lines = lines
	for i := 0; i < n; i++ {
		sc.Arrows = append(sc.Arrows,
			chart.Arrow{From: fmt.Sprintf("m%d", i+1), To: fmt.Sprintf("r%d", i+1)},
			chart.Arrow{From: fmt.Sprintf("b%d", n-i), To: fmt.Sprintf("r%d", i+1)},
		)
	}
	return sc, nil
}

// BurstEventName returns the remaining-burst annotation event for k
// outstanding beats ("Burst4", "Burst1", ...).
func BurstEventName(k int) string { return fmt.Sprintf("Burst%d", k) }

// burstModelTrace schedules one length-n burst into the model (shared
// by Model when Config.BurstLen > 4 is wanted in campaigns); kept beside
// BurstReadChartN so the chart and the traffic stay in lockstep.
func (m *Model) startBurstN(n int, fault FaultKind) int {
	nreq := n
	if fault == FaultShortBurst && n > 1 {
		nreq = n - 1
	}
	for i := 0; i < nreq; i++ {
		evs := []string{EvBMCmdRd, BurstEventName(n - i), EvAddr}
		if i == 0 && fault != FaultDropAccept {
			evs = append(evs, EvSCmdAccept)
		}
		m.schedule(i, evs...)
	}
	for i := 0; i < nreq; i++ {
		respAt := i + 2
		if fault == FaultLateResponse {
			respAt++
		}
		switch {
		case fault == FaultDropResponse && i == nreq-1:
		case fault == FaultMissingData && i == nreq-1:
			m.schedule(respAt, EvSResp)
		default:
			m.schedule(respAt, EvSResp, EvSData)
		}
	}
	return nreq + 2 + boolInt(fault == FaultLateResponse)
}
