package ocp

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/semantics"
	"repro/internal/synth"
)

func TestWriteChartValidatesAndDetects(t *testing.T) {
	if err := WriteChart().Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := synth.Translate(WriteChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Seed: 61, Write: true})
	tr := model.GenerateTrace(200)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	if model.Issued() < 10 {
		t.Fatalf("issued only %d writes", model.Issued())
	}
	if stats.Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d writes", stats.Accepts, model.Issued())
	}
}

func TestWriteChartRejectsWaitStateRuns(t *testing.T) {
	// With wait states the simple write chart must not match (the accept
	// cycle is not the first request cycle).
	m, err := synth.Translate(WriteChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Seed: 62, Write: true, AcceptDelay: 2})
	tr := model.GenerateTrace(200)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	// The window "accept cycle + response" still matches (it is a
	// suffix of the wait-state run), but the full handshake pattern is
	// the HandshakeChart's job; here we only require detection to keep
	// firing at the accepted cycles.
	if stats.Accepts == 0 {
		t.Error("accepted-cycle windows not found in wait-state runs")
	}
}

// TestHandshakeChartMatchesWaitStates: the loop-composed handshake chart
// detects writes regardless of how many wait states (up to the bound)
// the slave inserted, and the oracle agrees tick by tick.
func TestHandshakeChartMatchesWaitStates(t *testing.T) {
	const maxWait = 3
	c := HandshakeChart(maxWait)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	for delay := 0; delay <= maxWait; delay++ {
		model := NewModel(Config{Gap: 2, Seed: int64(63 + delay), Write: true, AcceptDelay: delay})
		tr := model.GenerateTrace(300)
		eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
		stats := eng.Run(tr)
		if stats.Accepts < model.Issued()-1 {
			t.Errorf("delay %d: accepts = %d for %d writes", delay, stats.Accepts, model.Issued())
		}
		// Oracle agreement on a shorter window.
		short := tr[:100]
		ends := semantics.MatchEndTicks(c, short)
		eng2 := monitor.NewEngine(m, nil, monitor.ModeDetect)
		var got []int
		for i, s := range short {
			if eng2.Step(s).Outcome == monitor.Accepted {
				got = append(got, i)
			}
		}
		if len(got) != len(ends) {
			t.Errorf("delay %d: monitor ends %v != oracle %v", delay, got, ends)
			continue
		}
		for i := range got {
			if got[i] != ends[i] {
				t.Errorf("delay %d: monitor ends %v != oracle %v", delay, got, ends)
				break
			}
		}
	}
}

func TestHandshakeChartRejectsExcessWaitStates(t *testing.T) {
	c := HandshakeChart(2)
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Seed: 70, Write: true, AcceptDelay: 5})
	tr := model.GenerateTrace(200)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	// The bounded loop covers at most 2 wait states; with 5, only the
	// tail (<=2 waits + accept + resp) windows match — which still
	// happens since loop allows fewer iterations than observed waits
	// (the window just starts later). Detection therefore still fires;
	// what must NOT happen is a miss.
	if stats.Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d writes", stats.Accepts, model.Issued())
	}
}

func TestWriteFaultsSuppressOrFlag(t *testing.T) {
	m, err := synth.Translate(WriteChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []FaultKind{FaultDropResponse, FaultLateResponse, FaultDropAccept} {
		model := NewModel(Config{Gap: 2, Seed: 71, Write: true, FaultRate: 1, FaultKinds: []FaultKind{kind}})
		tr := model.GenerateTrace(200)
		eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
		stats := eng.Run(tr)
		if stats.Accepts != 0 {
			t.Errorf("fault %v: %d windows detected, want 0", kind, stats.Accepts)
		}
	}
}

func TestBurstReadChartNReproducesFig7(t *testing.T) {
	c4, err := BurstReadChartN(4)
	if err != nil {
		t.Fatal(err)
	}
	ref := BurstReadChart()
	if len(c4.Lines) != len(ref.Lines) {
		t.Fatalf("lines = %d, want %d", len(c4.Lines), len(ref.Lines))
	}
	for i := range ref.Lines {
		if got, want := c4.Lines[i].Expr().String(), ref.Lines[i].Expr().String(); got != want {
			t.Errorf("line %d: %q != %q", i, got, want)
		}
	}
	if len(c4.Arrows) != len(ref.Arrows) {
		t.Errorf("arrows = %d, want %d", len(c4.Arrows), len(ref.Arrows))
	}
}

func TestBurstReadChartNScales(t *testing.T) {
	for _, n := range []int{1, 2, 8} {
		c, err := BurstReadChartN(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		m, err := synth.Translate(c, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m.States != n+2+1 {
			t.Errorf("n=%d: states = %d, want %d", n, m.States, n+3)
		}
		model := NewModel(Config{Gap: 2, Seed: int64(200 + n), Burst: true, BurstLen: n})
		tr := model.GenerateTrace(400)
		eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
		stats := eng.Run(tr)
		if stats.Accepts < model.Issued()-1 {
			t.Errorf("n=%d: accepts = %d for %d bursts", n, stats.Accepts, model.Issued())
		}
	}
	if _, err := BurstReadChartN(0); err == nil {
		t.Error("zero-length burst accepted")
	}
}
