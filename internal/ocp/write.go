package ocp

import (
	"fmt"

	"repro/internal/chart"
)

// Additional OCP scenarios beyond the paper's two figures, built from
// the same OCP v1.0 handshake rules: a posted write and a request
// handshake with wait states. The handshake chart exercises the loop
// construct on a real protocol — the paper's §3 motivates loops with
// exactly such repetitive event sequences.

// OCP write-path event names.
const (
	EvMCmdWr = "MCmd_wr"
	EvMData  = "MData"
)

// WriteChart builds a simple posted write: command, address, write data
// and accept in one cycle, the (data-less) response in the next.
func WriteChart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "ocp_simple_write",
		Clock:     "ocp_clk",
		Instances: []string{"Master", "Slave"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvMCmdWr, Label: "cmd", From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave"},
				{Event: EvMData, From: "Master", To: "Slave"},
				{Event: EvSCmdAccept, From: "Slave", To: "Master"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvSResp, Label: "resp", From: "Slave", To: "Master"},
			}},
		},
		Arrows: []chart.Arrow{{From: "cmd", To: "resp"}},
	}
}

// HandshakeChart builds the request handshake with up to maxWait wait
// states: the master holds the write request while the slave withholds
// SCmd_accept, then the accepted cycle and the response follow. The
// wait-state prefix is a bounded loop over a one-tick chart, so the
// synthesized monitor is the subset-construction compilation of
// seq(loop[0..maxWait](hold), accept, resp).
func HandshakeChart(maxWait int) chart.Chart {
	if maxWait < 0 {
		maxWait = 0
	}
	hold := &chart.SCESC{
		ChartName: "ocp_wait_state",
		Clock:     "ocp_clk",
		Instances: []string{"Master", "Slave"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvMCmdWr, From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave"},
				{Event: EvSCmdAccept, Negated: true},
			}},
		},
	}
	tail := &chart.SCESC{
		ChartName: "ocp_accept_resp",
		Clock:     "ocp_clk",
		Instances: []string{"Master", "Slave"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: EvMCmdWr, From: "Master", To: "Slave"},
				{Event: EvAddr, From: "Master", To: "Slave"},
				{Event: EvSCmdAccept, From: "Slave", To: "Master"},
			}},
			{Events: []chart.EventSpec{
				{Event: EvSResp, From: "Slave", To: "Master"},
			}},
		},
	}
	return &chart.Seq{
		ChartName: fmt.Sprintf("ocp_write_handshake_w%d", maxWait),
		Children: []chart.Chart{
			&chart.Loop{ChartName: "wait_states", Body: hold, Min: 0, Max: maxWait},
			tail,
		},
	}
}
