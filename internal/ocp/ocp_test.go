package ocp

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/monitor"
	"repro/internal/synth"
)

func TestChartsValidate(t *testing.T) {
	if err := SimpleReadChart().Validate(); err != nil {
		t.Errorf("simple read chart invalid: %v", err)
	}
	if err := BurstReadChart().Validate(); err != nil {
		t.Errorf("burst read chart invalid: %v", err)
	}
}

// TestFig6MonitorStructure is experiment E6: the synthesized monitor for
// the OCP simple read matches the paper's Figure 6 — three states, the
// request guard with Add_evt(MCmd_rd), the response guard carrying
// Chk_evt(MCmd_rd), and the give-up edge reversing with Del_evt(MCmd_rd).
func TestFig6MonitorStructure(t *testing.T) {
	m, err := synth.Translate(SimpleReadChart(), &synth.Options{NameGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 3 || m.Initial != 0 || m.Final != 2 {
		t.Fatalf("shape %d/%d/%d, want 3 states initial 0 final 2", m.States, m.Initial, m.Final)
	}
	adv0 := transTo(t, m, 0, 1)
	for _, ev := range []string{EvMCmdRd, EvAddr, EvSCmdAccept} {
		if !strings.Contains(adv0.Guard.String(), ev) {
			t.Errorf("request guard %q missing %s", adv0.Guard, ev)
		}
	}
	if got := actionStrings(adv0); len(got) != 1 || got[0] != "Add_evt(MCmd_rd)" {
		t.Errorf("request actions = %v, want [Add_evt(MCmd_rd)]", got)
	}
	adv1 := transTo(t, m, 1, 2)
	g1 := adv1.Guard.String()
	for _, want := range []string{EvSResp, EvSData, "Chk_evt(MCmd_rd)"} {
		if !strings.Contains(g1, want) {
			t.Errorf("response guard %q missing %s", g1, want)
		}
	}
	// Give-up from the final state reverses the scoreboard.
	back := transTo(t, m, 2, 0)
	if got := actionStrings(back); len(got) != 1 || got[0] != "Del_evt(MCmd_rd)" {
		t.Errorf("give-up actions = %v, want [Del_evt(MCmd_rd)]", got)
	}
	if ok, err := m.Total(); !ok {
		t.Errorf("not total: %v", err)
	}
}

// TestFig7MonitorStructure is experiment E7: the pipelined burst read
// monitor has seven states; requests add (MCmdRd, BurstN) pairs, each
// response checks the command and its burst annotation, and backward
// edges reverse the accumulated adds with multiplicity (the paper's
// act5..act8 composite reversals).
func TestFig7MonitorStructure(t *testing.T) {
	m, err := synth.Translate(BurstReadChart(), &synth.Options{NameGuards: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.States != 7 || m.Final != 6 {
		t.Fatalf("shape %d states final %d, want 7/6", m.States, m.Final)
	}
	// act1..act4: each request tick adds MCmdRd and its burst marker.
	wantAdds := []struct {
		from, to int
		action   string
	}{
		{0, 1, "Add_evt(Burst4, MCmdRd)"},
		{1, 2, "Add_evt(Burst3, MCmdRd)"},
		{2, 3, "Add_evt(Burst2, MCmdRd)"},
		{3, 4, "Add_evt(Burst1, MCmdRd)"},
	}
	for _, w := range wantAdds {
		tr := transTo(t, m, w.from, w.to)
		got := actionStrings(tr)
		if len(got) == 0 || got[len(got)-1] != w.action {
			t.Errorf("%d->%d actions = %v, want last %q", w.from, w.to, got, w.action)
		}
	}
	// Response guards carry the paired Chk_evt checks (c..f of the paper).
	wantChk := []struct {
		from, to int
		chks     []string
	}{
		{2, 3, []string{"Chk_evt(MCmdRd)", "Chk_evt(Burst4)"}},
		{3, 4, []string{"Chk_evt(MCmdRd)", "Chk_evt(Burst3)"}},
		{4, 5, []string{"Chk_evt(MCmdRd)", "Chk_evt(Burst2)"}},
		{5, 6, []string{"Chk_evt(MCmdRd)", "Chk_evt(Burst1)"}},
	}
	for _, w := range wantChk {
		tr := transTo(t, m, w.from, w.to)
		for _, chk := range w.chks {
			if !strings.Contains(tr.Guard.String(), chk) {
				t.Errorf("%d->%d guard %q missing %s", w.from, w.to, tr.Guard, chk)
			}
		}
	}
	// act7: giving up from state 3 reverses the first three request adds
	// with multiplicity (MCmdRd three times).
	back := transTo(t, m, 3, 0)
	got := actionStrings(back)
	want := "Del_evt(Burst2, Burst3, Burst4, MCmdRd, MCmdRd, MCmdRd)"
	if len(got) != 1 || got[0] != want {
		t.Errorf("state-3 give-up actions = %v, want [%s]", got, want)
	}
	// act8: from state 4 on, all four pairs are reversed.
	back4 := transTo(t, m, 4, 0)
	got4 := actionStrings(back4)
	want4 := "Del_evt(Burst1, Burst2, Burst3, Burst4, MCmdRd, MCmdRd, MCmdRd, MCmdRd)"
	if len(got4) != 1 || got4[0] != want4 {
		t.Errorf("state-4 give-up actions = %v, want [%s]", got4, want4)
	}
	// Full reversal from the final state deletes all four pairs.
	fin := transTo(t, m, 6, 0)
	gotFin := actionStrings(fin)
	wantFin := "Del_evt(Burst1, Burst2, Burst3, Burst4, MCmdRd, MCmdRd, MCmdRd, MCmdRd)"
	if len(gotFin) != 1 || gotFin[0] != wantFin {
		t.Errorf("final give-up actions = %v, want [%s]", gotFin, wantFin)
	}
}

func transTo(t *testing.T, m *monitor.Monitor, from, to int) monitor.Transition {
	t.Helper()
	for _, tr := range m.Trans[from] {
		if tr.To == to {
			return tr
		}
	}
	t.Fatalf("no transition %d -> %d in:\n%s", from, to, m)
	return monitor.Transition{}
}

func actionStrings(tr monitor.Transition) []string {
	var out []string
	for _, a := range tr.Actions {
		out = append(out, a.String())
	}
	return out
}

func TestModelCleanSimpleReadsDetected(t *testing.T) {
	m, err := synth.Translate(SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Seed: 1})
	tr := model.GenerateTrace(200)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	if model.Issued() == 0 {
		t.Fatal("model issued no transactions")
	}
	// Every completed transaction's window must be detected; the last
	// transaction may be cut off by the horizon.
	if stats.Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d issued transactions", stats.Accepts, model.Issued())
	}
	if model.Faulted() != 0 {
		t.Errorf("faulted = %d with zero fault rate", model.Faulted())
	}
}

func TestModelCleanBurstReadsDetected(t *testing.T) {
	m, err := synth.Translate(BurstReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(Config{Gap: 2, Burst: true, Seed: 2})
	tr := model.GenerateTrace(400)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	stats := eng.Run(tr)
	if model.Issued() < 10 {
		t.Fatalf("model issued only %d bursts", model.Issued())
	}
	if stats.Accepts < model.Issued()-1 {
		t.Errorf("accepts = %d for %d issued bursts", stats.Accepts, model.Issued())
	}
}

func TestFaultInjectionBreaksWindows(t *testing.T) {
	m, err := synth.Translate(SimpleReadChart(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// All transactions faulted: no window should complete for
	// response-affecting faults.
	for _, kind := range []FaultKind{FaultDropResponse, FaultMissingData, FaultLateResponse, FaultDropAccept} {
		model := NewModel(Config{Gap: 2, Seed: 3, FaultRate: 1, FaultKinds: []FaultKind{kind}})
		tr := model.GenerateTrace(200)
		eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
		stats := eng.Run(tr)
		if stats.Accepts != 0 {
			t.Errorf("fault %v: %d windows detected, want 0", kind, stats.Accepts)
		}
	}
}

func TestFaultKindsString(t *testing.T) {
	for _, k := range []FaultKind{FaultNone, FaultDropResponse, FaultMissingData, FaultLateResponse, FaultDropAccept, FaultShortBurst} {
		if k.String() == "fault?" {
			t.Errorf("fault kind %d has no name", int(k))
		}
	}
	if FaultKind(99).String() != "fault?" {
		t.Error("unknown fault kind not flagged")
	}
}

func TestModelDeterminism(t *testing.T) {
	a := NewModel(Config{Gap: 1, Seed: 7, FaultRate: 0.5}).GenerateTrace(100)
	b := NewModel(Config{Gap: 1, Seed: 7, FaultRate: 0.5}).GenerateTrace(100)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at tick %d", i)
		}
	}
}

// TestInjectedSourceReproducible pins the Config.Source contract: a model
// driven by an explicit source reproduces the Seed-driven stream exactly
// (so harnesses can thread one shared source through many models), and
// differs once the source position has advanced.
func TestInjectedSourceReproducible(t *testing.T) {
	cfg := Config{Gap: 1, FaultRate: 0.5, Seed: 17}
	viaSeed := NewModel(cfg).GenerateTrace(300)

	withSrc := cfg
	withSrc.Source = rand.NewSource(17)
	viaSource := NewModel(withSrc).GenerateTrace(300)
	for i := range viaSeed {
		if !viaSeed[i].Equal(viaSource[i]) {
			t.Fatalf("cycle %d: Source-driven model diverged from Seed-driven model", i)
		}
	}

	// A shared source advances across models: the second model must not
	// replay the first's stream.
	shared := rand.NewSource(17)
	first := cfg
	first.Source = shared
	_ = NewModel(first).GenerateTrace(300)
	second := cfg
	second.Source = shared
	cont := NewModel(second).GenerateTrace(300)
	same := true
	for i := range viaSeed {
		if !viaSeed[i].Equal(cont[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shared source did not advance across models")
	}
}
