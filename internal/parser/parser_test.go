package parser

import (
	"strings"
	"testing"

	"repro/internal/chart"
	"repro/internal/monitor"
	"repro/internal/synth"
	"repro/internal/trace"
)

const fig5Src = `
// Figure 5 of the paper: guarded events, an empty grid line, and a
// causality arrow.
cesc Fig5 {
  prop p1, p3;
  scesc on clk {
    instances A, B;
    tick { e1 = p1: e1_ev @ A -> B;  e2_ev @ B -> A; }
    tick { }
    tick { e3 = p3: e3_ev @ A -> B; }
    arrow e1 -> e3;
  }
}
`

func TestParseFig5(t *testing.T) {
	f, err := Parse(fig5Src)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := f.Find("Fig5")
	if !ok {
		t.Fatal("chart Fig5 not found")
	}
	sc, ok := c.(*chart.SCESC)
	if !ok {
		t.Fatalf("parsed chart is %T, want *chart.SCESC", c)
	}
	if sc.Clock != "clk" || len(sc.Lines) != 3 || len(sc.Arrows) != 1 {
		t.Fatalf("shape clock=%q lines=%d arrows=%d", sc.Clock, len(sc.Lines), len(sc.Arrows))
	}
	if got := sc.Lines[0].Expr().String(); got != "p1 & e1_ev & e2_ev" {
		t.Errorf("line 0 = %q", got)
	}
	if got := sc.Lines[1].Expr().String(); got != "true" {
		t.Errorf("line 1 = %q", got)
	}
	if sc.Arrows[0] != (chart.Arrow{From: "e1", To: "e3"}) {
		t.Errorf("arrow = %+v", sc.Arrows[0])
	}
	if len(sc.Instances) != 2 {
		t.Errorf("instances = %v", sc.Instances)
	}
}

func TestParsedChartSynthesizesAndRuns(t *testing.T) {
	c := MustParseChart(fig5Src)
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := trace.NewBuilder().
		Tick().Events("e1_ev", "e2_ev").Props("p1").
		Tick().
		Tick().Events("e3_ev").Props("p3").
		Build()
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	if !eng.Accepts(good) {
		t.Error("parsed Fig5 monitor rejected the conforming trace")
	}
}

func TestParseStructuralConstructs(t *testing.T) {
	src := `
cesc Composite {
  seq {
    scesc Head on clk { tick { start; } }
    alt {
      scesc A on clk { tick { left; } }
      scesc B on clk { tick { right; } tick { right2; } }
    }
    loop [1, 3] {
      scesc Body on clk { tick { beat; } }
    }
  }
}
`
	c, err := ParseChart(src)
	if err != nil {
		t.Fatal(err)
	}
	desc := chart.Describe(c)
	want := "seq(scesc[1]@clk, alt(scesc[1]@clk, scesc[2]@clk), loop[1..3](scesc[1]@clk))"
	if desc != want {
		t.Errorf("structure = %s, want %s", desc, want)
	}
}

func TestParseUnboundedLoopAndImplies(t *testing.T) {
	src := `
cesc P {
  implies {
    scesc T on clk { tick { req; } }
  } {
    seq {
      scesc C1 on clk { tick { grant; } }
      loop [1, *] { scesc C2 on clk { tick { data; } } }
    }
  }
}
`
	c, err := ParseChart(src)
	if err != nil {
		t.Fatal(err)
	}
	imp, ok := c.(*chart.Implies)
	if !ok {
		t.Fatalf("chart is %T, want *chart.Implies", c)
	}
	seq := imp.Consequent.(*chart.Seq)
	loop := seq.Children[1].(*chart.Loop)
	if loop.Max != chart.Unbounded || loop.Min != 1 {
		t.Errorf("loop bounds = [%d, %d]", loop.Min, loop.Max)
	}
}

func TestParseAsyncWithCrossArrows(t *testing.T) {
	src := `
cesc Gals {
  async {
    scesc Left on clk1 {
      tick { e1 = req; }
      tick { e2 = fwd; }
    }
    scesc Right on clk2 {
      tick { e4 = serve; }
    }
    cross e2 -> e4;
  }
}
`
	c, err := ParseChart(src)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := c.(*chart.Async)
	if !ok {
		t.Fatalf("chart is %T, want *chart.Async", c)
	}
	if len(a.Children) != 2 || len(a.CrossArrows) != 1 {
		t.Fatalf("children=%d cross=%d", len(a.Children), len(a.CrossArrows))
	}
	if a.CrossArrows[0] != (chart.Arrow{From: "e2", To: "e4"}) {
		t.Errorf("cross arrow = %+v", a.CrossArrows[0])
	}
}

func TestParseMarkerForms(t *testing.T) {
	src := `
cesc Markers {
  prop ready;
  scesc on clk {
    instances M, S;
    tick {
      plain;
      guarded = ready: cmd @ M -> S;
      (ready & !stall): gated;
      !forbidden;
      ext @ env;
      when ready & !stall;
    }
  }
}
`
	c, err := ParseChart(src)
	if err != nil {
		t.Fatal(err)
	}
	sc := c.(*chart.SCESC)
	line := sc.Lines[0]
	if len(line.Events) != 5 {
		t.Fatalf("markers = %d, want 5", len(line.Events))
	}
	byEvent := map[string]chart.EventSpec{}
	for _, e := range line.Events {
		byEvent[e.Event] = e
	}
	if byEvent["cmd"].Label != "guarded" || byEvent["cmd"].Guard == nil {
		t.Errorf("cmd marker = %+v", byEvent["cmd"])
	}
	if byEvent["gated"].Guard == nil || byEvent["gated"].Guard.String() != "ready & !stall" {
		t.Errorf("gated guard = %v", byEvent["gated"].Guard)
	}
	if !byEvent["forbidden"].Negated {
		t.Error("negated marker not parsed")
	}
	if !byEvent["ext"].Env {
		t.Error("env marker not parsed")
	}
	if line.Cond == nil || line.Cond.String() != "ready & !stall" {
		t.Errorf("line condition = %v", line.Cond)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", ``, "no charts"},
		{"missing brace", `cesc X { scesc on clk { tick { a; } }`, "expected"},
		{"bad token", `cesc X { scesc on clk { tick { a # b; } } }`, "unexpected character"},
		{"dangling dash", `cesc X { scesc on clk { tick { a - b; } } }`, "did you mean"},
		{"no clock", `cesc X { scesc { tick { a; } } }`, `expected "on"`},
		{"bad arrow", `cesc X { scesc on clk { tick { e1 = a; } arrow e1 -> nowhere; } }`, "unknown label"},
		{"backward arrow", `cesc X { scesc on clk { tick { e1 = a; e2 = b; } arrow e2 -> e1; } }`, "forward"},
		{"loop bound", `cesc X { loop [2, 1] { scesc on clk { tick { a; } } } }`, "max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("source accepted: %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseMultipleCharts(t *testing.T) {
	src := `
cesc One { scesc on clk { tick { a; } } }
cesc Two { scesc on clk { tick { b; } } }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Charts) != 2 {
		t.Fatalf("charts = %d, want 2", len(f.Charts))
	}
	if _, ok := f.Find("Two"); !ok {
		t.Error("chart Two not found")
	}
	if _, ok := f.Find("Three"); ok {
		t.Error("nonexistent chart found")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "cesc C { // header comment\n  scesc on clk { tick { a; } } // trailing\n}\n// tail comment\n"
	if _, err := Parse(src); err != nil {
		t.Fatalf("comments broke parsing: %v", err)
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	src := "cesc X {\n  scesc on clk {\n    tick { a # ; }\n  }\n}\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "cesc:3:") {
		t.Errorf("error %q lacks line info for line 3", err)
	}
}
