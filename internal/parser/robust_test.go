package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics mutates valid sources at random and requires the
// parser to fail cleanly (an error, never a panic), exercising the error
// paths a fuzzer would.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		fig5Src,
		`cesc A { scesc on clk { tick { a; b; } tick { } arrow x -> y; } }`,
		`cesc B { seq { scesc on c { tick { a; } } loop [0, *] { scesc on c { tick { b; } } } } }`,
		`cesc C { async { scesc L on c1 { tick { l = a; } } scesc R on c2 { tick { r = b; } } cross l -> r; } }`,
		`cesc D { implies { scesc on c { tick { q; } } } { scesc on c { tick { s; } } } }`,
	}
	rng := rand.New(rand.NewSource(97))
	junk := []byte("{}();,:=!&|*->@#\"\\\n\t abc123")
	for round := 0; round < 3000; round++ {
		src := []byte(seeds[rng.Intn(len(seeds))])
		nmut := 1 + rng.Intn(4)
		for i := 0; i < nmut; i++ {
			switch rng.Intn(3) {
			case 0: // substitute
				if len(src) > 0 {
					src[rng.Intn(len(src))] = junk[rng.Intn(len(junk))]
				}
			case 1: // delete a span
				if len(src) > 2 {
					at := rng.Intn(len(src) - 1)
					end := at + 1 + rng.Intn(minInt(8, len(src)-at-1))
					src = append(src[:at], src[end:]...)
				}
			case 2: // insert
				at := rng.Intn(len(src) + 1)
				ins := junk[rng.Intn(len(junk))]
				src = append(src[:at], append([]byte{ins}, src[at:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on mutated input: %v\n%s", r, src)
				}
			}()
			_, _ = Parse(string(src))
		}()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestParserTruncations: every prefix of a valid source either parses or
// errors cleanly.
func TestParserTruncations(t *testing.T) {
	src := fig5Src
	for i := 0; i <= len(src); i++ {
		func(n int) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", n, r)
				}
			}()
			_, _ = Parse(src[:n])
		}(i)
	}
}

// TestParserDeepNesting guards the recursive descent against stack abuse
// at plausible depths.
func TestParserDeepNesting(t *testing.T) {
	var b strings.Builder
	const depth = 200
	b.WriteString("cesc Deep { ")
	for i := 0; i < depth; i++ {
		b.WriteString("seq { ")
	}
	b.WriteString("scesc on clk { tick { a; } }")
	for i := 0; i < depth; i++ {
		b.WriteString(" }")
	}
	b.WriteString(" }")
	if _, err := Parse(b.String()); err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
}
