package parser

import (
	"fmt"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
)

// File is a parsed .cesc source: one or more named charts.
type File struct {
	Charts []Named
}

// Named pairs a chart with its declared name.
type Named struct {
	Name  string
	Chart chart.Chart
}

// Find returns the chart declared with the given name.
func (f *File) Find(name string) (chart.Chart, bool) {
	for _, n := range f.Charts {
		if n.Name == name {
			return n.Chart, true
		}
	}
	return nil, false
}

// Parse parses CESC source text and validates every chart.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src), props: map[string]bool{}, events: map[string]bool{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.kind != tkEOF {
		n, err := p.parseCesc()
		if err != nil {
			return nil, err
		}
		f.Charts = append(f.Charts, n)
	}
	if len(f.Charts) == 0 {
		return nil, fmt.Errorf("cesc: source declares no charts")
	}
	for _, n := range f.Charts {
		if err := n.Chart.Validate(); err != nil {
			return nil, fmt.Errorf("cesc: chart %q: %w", n.Name, err)
		}
	}
	return f, nil
}

// ParseChart parses source declaring exactly one chart.
func ParseChart(src string) (chart.Chart, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(f.Charts) != 1 {
		return nil, fmt.Errorf("cesc: expected exactly one chart, found %d", len(f.Charts))
	}
	return f.Charts[0].Chart, nil
}

// MustParseChart is ParseChart that panics on error; for fixtures.
func MustParseChart(src string) chart.Chart {
	c, err := ParseChart(src)
	if err != nil {
		panic(err)
	}
	return c
}

type parser struct {
	lex *lexer
	tok token
	// declared symbol kinds; guards default identifiers to propositions,
	// event positions are always events.
	props  map[string]bool
	events map[string]bool
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("cesc:%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errorf("expected %s, found %s", k, p.tok.describe())
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.tok.keyword(kw) {
		return p.errorf("expected %q, found %s", kw, p.tok.describe())
	}
	return p.advance()
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tkIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

// parseCesc parses: cesc NAME { decl* chartExpr }.
func (p *parser) parseCesc() (Named, error) {
	if err := p.expectKeyword("cesc"); err != nil {
		return Named{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Named{}, err
	}
	if _, err := p.expect(tkLBrace); err != nil {
		return Named{}, err
	}
	for p.tok.keyword("prop") || p.tok.keyword("event") {
		kind := p.tok.text
		if err := p.advance(); err != nil {
			return Named{}, err
		}
		names, err := p.identList()
		if err != nil {
			return Named{}, err
		}
		for _, n := range names {
			if kind == "prop" {
				p.props[n] = true
			} else {
				p.events[n] = true
			}
		}
		if _, err := p.expect(tkSemi); err != nil {
			return Named{}, err
		}
	}
	c, err := p.parseChartExpr()
	if err != nil {
		return Named{}, err
	}
	if _, err := p.expect(tkRBrace); err != nil {
		return Named{}, err
	}
	setName(c, name)
	return Named{Name: name, Chart: c}, nil
}

func setName(c chart.Chart, name string) {
	switch v := c.(type) {
	case *chart.SCESC:
		if v.ChartName == "" {
			v.ChartName = name
		}
	case *chart.Seq:
		v.ChartName = name
	case *chart.Par:
		v.ChartName = name
	case *chart.Alt:
		v.ChartName = name
	case *chart.Loop:
		v.ChartName = name
	case *chart.Implies:
		v.ChartName = name
	case *chart.Async:
		v.ChartName = name
	}
}

func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if p.tok.kind != tkComma {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// parseChartExpr dispatches on the leading keyword.
func (p *parser) parseChartExpr() (chart.Chart, error) {
	switch {
	case p.tok.keyword("scesc"):
		return p.parseSCESC()
	case p.tok.keyword("seq"):
		children, err := p.parseChartBlock("seq")
		if err != nil {
			return nil, err
		}
		return &chart.Seq{Children: children}, nil
	case p.tok.keyword("par"):
		children, err := p.parseChartBlock("par")
		if err != nil {
			return nil, err
		}
		return &chart.Par{Children: children}, nil
	case p.tok.keyword("alt"):
		children, err := p.parseChartBlock("alt")
		if err != nil {
			return nil, err
		}
		return &chart.Alt{Children: children}, nil
	case p.tok.keyword("loop"):
		return p.parseLoop()
	case p.tok.keyword("implies"):
		return p.parseImplies()
	case p.tok.keyword("async"):
		return p.parseAsync()
	default:
		return nil, p.errorf("expected a chart expression (scesc/seq/par/alt/loop/implies/async), found %s",
			p.tok.describe())
	}
}

func (p *parser) parseChartBlock(kw string) ([]chart.Chart, error) {
	if err := p.expectKeyword(kw); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkLBrace); err != nil {
		return nil, err
	}
	var children []chart.Chart
	for p.tok.kind != tkRBrace {
		c, err := p.parseChartExpr()
		if err != nil {
			return nil, err
		}
		children = append(children, c)
	}
	if _, err := p.expect(tkRBrace); err != nil {
		return nil, err
	}
	return children, nil
}

// parseLoop parses: loop [min, max|*] { chartExpr }.
func (p *parser) parseLoop() (chart.Chart, error) {
	if err := p.expectKeyword("loop"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkLBracket); err != nil {
		return nil, err
	}
	minTok, err := p.expect(tkNumber)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkComma); err != nil {
		return nil, err
	}
	max := chart.Unbounded
	switch p.tok.kind {
	case tkStar:
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tkNumber:
		max = atoi(p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected repetition bound or '*', found %s", p.tok.describe())
	}
	if _, err := p.expect(tkRBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkLBrace); err != nil {
		return nil, err
	}
	body, err := p.parseChartExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkRBrace); err != nil {
		return nil, err
	}
	return &chart.Loop{Body: body, Min: atoi(minTok.text), Max: max}, nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

// parseImplies parses: implies [maxDelay]? { chartExpr } { chartExpr }.
func (p *parser) parseImplies() (chart.Chart, error) {
	if err := p.expectKeyword("implies"); err != nil {
		return nil, err
	}
	maxDelay := 0
	if p.tok.kind == tkLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.expect(tkNumber)
		if err != nil {
			return nil, err
		}
		maxDelay = atoi(n.text)
		if _, err := p.expect(tkRBracket); err != nil {
			return nil, err
		}
	}
	parseOne := func() (chart.Chart, error) {
		if _, err := p.expect(tkLBrace); err != nil {
			return nil, err
		}
		c, err := p.parseChartExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRBrace); err != nil {
			return nil, err
		}
		return c, nil
	}
	trig, err := parseOne()
	if err != nil {
		return nil, err
	}
	cons, err := parseOne()
	if err != nil {
		return nil, err
	}
	return &chart.Implies{Trigger: trig, Consequent: cons, MaxDelay: maxDelay}, nil
}

// parseAsync parses: async { chartExpr+ ("cross" L -> L ";")* }.
func (p *parser) parseAsync() (chart.Chart, error) {
	if err := p.expectKeyword("async"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkLBrace); err != nil {
		return nil, err
	}
	a := &chart.Async{}
	for p.tok.kind != tkRBrace {
		if p.tok.keyword("cross") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			from, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkArrow); err != nil {
				return nil, err
			}
			to, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSemi); err != nil {
				return nil, err
			}
			a.CrossArrows = append(a.CrossArrows, chart.Arrow{From: from, To: to})
			continue
		}
		c, err := p.parseChartExpr()
		if err != nil {
			return nil, err
		}
		a.Children = append(a.Children, c)
	}
	if _, err := p.expect(tkRBrace); err != nil {
		return nil, err
	}
	return a, nil
}

// parseSCESC parses: scesc NAME on CLOCK { items }.
func (p *parser) parseSCESC() (chart.Chart, error) {
	if err := p.expectKeyword("scesc"); err != nil {
		return nil, err
	}
	sc := &chart.SCESC{}
	if p.tok.kind == tkIdent && !p.tok.keyword("on") {
		sc.ChartName = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	clk, err := p.ident()
	if err != nil {
		return nil, err
	}
	sc.Clock = clk
	if _, err := p.expect(tkLBrace); err != nil {
		return nil, err
	}
	for p.tok.kind != tkRBrace {
		switch {
		case p.tok.keyword("instances"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			sc.Instances = append(sc.Instances, names...)
			if _, err := p.expect(tkSemi); err != nil {
				return nil, err
			}
		case p.tok.keyword("tick"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			line, err := p.parseGridLine()
			if err != nil {
				return nil, err
			}
			sc.Lines = append(sc.Lines, line)
		case p.tok.keyword("arrow"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			from, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkArrow); err != nil {
				return nil, err
			}
			to, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSemi); err != nil {
				return nil, err
			}
			sc.Arrows = append(sc.Arrows, chart.Arrow{From: from, To: to})
		default:
			return nil, p.errorf("expected instances/tick/arrow inside scesc, found %s", p.tok.describe())
		}
	}
	if _, err := p.expect(tkRBrace); err != nil {
		return nil, err
	}
	return sc, nil
}

// parseGridLine parses: { marker* }.
func (p *parser) parseGridLine() (chart.GridLine, error) {
	var line chart.GridLine
	if _, err := p.expect(tkLBrace); err != nil {
		return line, err
	}
	for p.tok.kind != tkRBrace {
		switch {
		case p.tok.keyword("when"):
			if err := p.advance(); err != nil {
				return line, err
			}
			e, err := p.parseGuardExpr()
			if err != nil {
				return line, err
			}
			if line.Cond == nil {
				line.Cond = e
			} else {
				line.Cond = expr.And(line.Cond, e)
			}
			if _, err := p.expect(tkSemi); err != nil {
				return line, err
			}
		case p.tok.kind == tkBang:
			if err := p.advance(); err != nil {
				return line, err
			}
			spec := chart.EventSpec{Negated: true}
			// Optional guard: `! p: e;` or `! (p & q): e;`.
			if p.tok.kind == tkLParen {
				g, err := p.parseGuardUnary()
				if err != nil {
					return line, err
				}
				spec.Guard = g
				if _, err := p.expect(tkColon); err != nil {
					return line, err
				}
			}
			first, err := p.ident()
			if err != nil {
				return line, err
			}
			if spec.Guard == nil && p.tok.kind == tkColon {
				spec.Guard = p.resolveGuardIdent(first)
				if err := p.advance(); err != nil {
					return line, err
				}
				first, err = p.ident()
				if err != nil {
					return line, err
				}
			}
			spec.Event = first
			p.events[spec.Event] = true
			if _, err := p.expect(tkSemi); err != nil {
				return line, err
			}
			line.Events = append(line.Events, spec)
		default:
			spec, err := p.parseMarker()
			if err != nil {
				return line, err
			}
			line.Events = append(line.Events, spec)
		}
	}
	if _, err := p.expect(tkRBrace); err != nil {
		return line, err
	}
	return line, nil
}

// parseMarker parses: [label =] [guard :] event [@ from -> to | @ env] ;
// The guard is either a bare identifier or a parenthesized expression.
func (p *parser) parseMarker() (chart.EventSpec, error) {
	var spec chart.EventSpec
	var err error
	readGuardedEvent := func() error {
		if p.tok.kind == tkLParen {
			g, err := p.parseGuardUnary()
			if err != nil {
				return err
			}
			spec.Guard = g
			if _, err := p.expect(tkColon); err != nil {
				return err
			}
			spec.Event, err = p.ident()
			return err
		}
		first, err := p.ident()
		if err != nil {
			return err
		}
		if p.tok.kind == tkColon {
			// first was a guard atom.
			spec.Guard = p.resolveGuardIdent(first)
			if err := p.advance(); err != nil {
				return err
			}
			spec.Event, err = p.ident()
			return err
		}
		spec.Event = first
		return nil
	}
	// Leading identifier followed by '=' is a label.
	if p.tok.kind == tkIdent {
		name := p.tok.text
		save := p.tok
		if err := p.advance(); err != nil {
			return spec, err
		}
		if p.tok.kind == tkEquals {
			spec.Label = name
			if err := p.advance(); err != nil {
				return spec, err
			}
			if err := readGuardedEvent(); err != nil {
				return spec, err
			}
		} else {
			// Not a label: re-dispatch with the identifier in hand.
			if p.tok.kind == tkColon {
				spec.Guard = p.resolveGuardIdent(name)
				if err := p.advance(); err != nil {
					return spec, err
				}
				spec.Event, err = p.ident()
				if err != nil {
					return spec, err
				}
			} else {
				spec.Event = save.text
			}
		}
	} else {
		if err := readGuardedEvent(); err != nil {
			return spec, err
		}
	}
	p.events[spec.Event] = true
	if p.tok.kind == tkAt {
		if err := p.advance(); err != nil {
			return spec, err
		}
		if p.tok.keyword("env") {
			spec.Env = true
			if err := p.advance(); err != nil {
				return spec, err
			}
		} else {
			spec.From, err = p.ident()
			if err != nil {
				return spec, err
			}
			if _, err := p.expect(tkArrow); err != nil {
				return spec, err
			}
			spec.To, err = p.ident()
			if err != nil {
				return spec, err
			}
		}
	}
	if _, err := p.expect(tkSemi); err != nil {
		return spec, err
	}
	return spec, nil
}

// parseGuardExpr parses a boolean expression over identifiers:
// or-precedence grammar with ! & | and parentheses.
func (p *parser) parseGuardExpr() (expr.Expr, error) {
	left, err := p.parseGuardAnd()
	if err != nil {
		return nil, err
	}
	terms := []expr.Expr{left}
	for p.tok.kind == tkPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseGuardAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	return expr.Or(terms...), nil
}

func (p *parser) parseGuardAnd() (expr.Expr, error) {
	left, err := p.parseGuardUnary()
	if err != nil {
		return nil, err
	}
	terms := []expr.Expr{left}
	for p.tok.kind == tkAmp {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseGuardUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	return expr.And(terms...), nil
}

func (p *parser) parseGuardUnary() (expr.Expr, error) {
	if p.tok.kind == tkBang {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseGuardUnary()
		if err != nil {
			return nil, err
		}
		return expr.Not(x), nil
	}
	switch p.tok.kind {
	case tkLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseGuardExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tkIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return expr.True, nil
		case "false":
			return expr.False, nil
		}
		return p.resolveGuardIdent(name), nil
	default:
		return nil, p.errorf("expected a guard expression, found %s", p.tok.describe())
	}
}

// resolveGuardIdent maps a guard identifier to a proposition or event
// reference: declared events stay events, everything else (declared props
// and undeclared names) defaults to a proposition over system variables.
func (p *parser) resolveGuardIdent(name string) expr.Expr {
	if p.events[name] && !p.props[name] {
		return expr.Ev(name)
	}
	return expr.Pr(name)
}

// Kinds returns the symbol kinds declared or inferred while parsing, for
// downstream tooling.
func (p *parser) Kinds() map[string]event.Kind {
	out := make(map[string]event.Kind)
	for n := range p.props {
		out[n] = event.KindProp
	}
	for n := range p.events {
		out[n] = event.KindEvent
	}
	return out
}
