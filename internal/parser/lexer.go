// Package parser implements the concrete textual syntax of CESC. The
// paper gives CESC "a precisely defined abstract textual syntax"; this
// package realizes it as a small declarative language (.cesc files) so
// that specifications can be written, versioned and compiled outside the
// Go API:
//
//	cesc ReadProtocol {
//	  prop p1, p3;
//	  scesc M1 on clk1 {
//	    instances Master, S_CNT;
//	    tick { e1 = p1: req1 @ Master -> S_CNT; rd1; }
//	    tick { }
//	    tick { e3 = p3: data1 @ S_CNT -> Master; }
//	    arrow e1 -> e3;
//	  }
//	}
//
// Structural constructs nest chart expressions:
//
//	cesc Burst {
//	  seq { scesc A on clk { ... }  loop [1, 4] { scesc B on clk { ... } } }
//	}
//
// and multi-clock charts use async with cross arrows:
//
//	cesc Gals {
//	  async {
//	    scesc Left on clk1 { ... }
//	    scesc Right on clk2 { ... }
//	    cross e2 -> e4;
//	  }
//	}
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkLBrace
	tkRBrace
	tkLParen
	tkRParen
	tkLBracket
	tkRBracket
	tkSemi
	tkComma
	tkColon
	tkEquals
	tkArrow // ->
	tkAt    // @
	tkBang  // !
	tkStar  // *
	tkAmp   // & or &&
	tkPipe  // | or ||
)

func (k tokKind) String() string {
	switch k {
	case tkEOF:
		return "end of file"
	case tkIdent:
		return "identifier"
	case tkNumber:
		return "number"
	case tkLBrace:
		return "'{'"
	case tkRBrace:
		return "'}'"
	case tkLParen:
		return "'('"
	case tkRParen:
		return "')'"
	case tkLBracket:
		return "'['"
	case tkRBracket:
		return "']'"
	case tkSemi:
		return "';'"
	case tkComma:
		return "','"
	case tkColon:
		return "':'"
	case tkEquals:
		return "'='"
	case tkArrow:
		return "'->'"
	case tkAt:
		return "'@'"
	case tkBang:
		return "'!'"
	case tkStar:
		return "'*'"
	case tkAmp:
		return "'&'"
	case tkPipe:
		return "'|'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// lexer scans CESC source into tokens. Comments run from // to end of
// line; whitespace is insignificant.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("cesc:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
			continue
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tkEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.advance()
	mk := func(k tokKind, text string) (token, error) {
		return token{kind: k, text: text, line: line, col: col}, nil
	}
	switch c {
	case '{':
		return mk(tkLBrace, "{")
	case '}':
		return mk(tkRBrace, "}")
	case '(':
		return mk(tkLParen, "(")
	case ')':
		return mk(tkRParen, ")")
	case '[':
		return mk(tkLBracket, "[")
	case ']':
		return mk(tkRBracket, "]")
	case ';':
		return mk(tkSemi, ";")
	case ',':
		return mk(tkComma, ",")
	case ':':
		return mk(tkColon, ":")
	case '=':
		return mk(tkEquals, "=")
	case '@':
		return mk(tkAt, "@")
	case '!':
		return mk(tkBang, "!")
	case '*':
		return mk(tkStar, "*")
	case '&':
		if l.peek() == '&' {
			l.advance()
		}
		return mk(tkAmp, "&")
	case '|':
		if l.peek() == '|' {
			l.advance()
		}
		return mk(tkPipe, "|")
	case '-':
		if l.peek() == '>' {
			l.advance()
			return mk(tkArrow, "->")
		}
		return token{}, l.errorf(line, col, "unexpected '-' (did you mean '->'?)")
	}
	if isDigit(c) {
		start := l.pos - 1
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return mk(tkNumber, l.src[start:l.pos])
	}
	if isIdentStart(c) {
		start := l.pos - 1
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return mk(tkIdent, l.src[start:l.pos])
	}
	if unicode.IsPrint(rune(c)) {
		return token{}, l.errorf(line, col, "unexpected character %q", string(c))
	}
	return token{}, l.errorf(line, col, "unexpected byte 0x%02x", c)
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// keyword reports whether the identifier token is the given keyword
// (keywords are case-sensitive lowercase).
func (t token) keyword(kw string) bool {
	return t.kind == tkIdent && t.text == kw
}

// describe renders a token for error messages.
func (t token) describe() string {
	if t.kind == tkIdent || t.kind == tkNumber {
		return fmt.Sprintf("%q", t.text)
	}
	return strings.TrimSuffix(strings.TrimPrefix(t.kind.String(), "'"), "'")
}
