package parser

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
)

// Print renders a chart back into canonical textual CESC. The output
// parses back to a structurally equivalent chart (round-trip tested), so
// it doubles as the formatter behind `cescc -emit cesc`.
func Print(name string, c chart.Chart) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cesc %s {\n", name)
	if props := collectProps(c); len(props) > 0 {
		fmt.Fprintf(&b, "  prop %s;\n", strings.Join(props, ", "))
	}
	if evs := collectGuardEvents(c); len(evs) > 0 {
		fmt.Fprintf(&b, "  event %s;\n", strings.Join(evs, ", "))
	}
	printChart(&b, c, 1)
	b.WriteString("}\n")
	return b.String()
}

// collectProps lists proposition symbols used anywhere in the chart so
// the printed source can re-declare them (guard identifiers default to
// propositions when reparsed, but explicitness keeps the file readable).
func collectProps(c chart.Chart) []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range chart.Symbols(c) {
		if s.Kind == event.KindProp && !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// collectGuardEvents lists event symbols referenced inside guard or
// condition expressions. Unlike marker events — whose position fixes the
// kind — a bare identifier in a guard reparses as a proposition, so
// these must be re-declared for the round trip to preserve kinds (found
// by FuzzParseChart).
func collectGuardEvents(c chart.Chart) []string {
	var out []string
	seen := make(map[string]bool)
	collect := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, s := range expr.SupportSymbols(e) {
			if s.Kind == event.KindEvent && !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s.Name)
			}
		}
	}
	for _, sc := range chart.Leaves(c) {
		for _, line := range sc.Lines {
			for _, ev := range line.Events {
				collect(ev.Guard)
			}
			collect(line.Cond)
		}
	}
	sort.Strings(out)
	return out
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func printChart(b *strings.Builder, c chart.Chart, depth int) {
	switch v := c.(type) {
	case *chart.SCESC:
		printSCESC(b, v, depth)
	case *chart.Seq:
		printBlock(b, "seq", v.Children, depth)
	case *chart.Par:
		printBlock(b, "par", v.Children, depth)
	case *chart.Alt:
		printBlock(b, "alt", v.Children, depth)
	case *chart.Loop:
		indent(b, depth)
		hi := "*"
		if v.Max != chart.Unbounded {
			hi = fmt.Sprint(v.Max)
		}
		fmt.Fprintf(b, "loop [%d, %s] {\n", v.Min, hi)
		printChart(b, v.Body, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *chart.Implies:
		indent(b, depth)
		if v.MaxDelay > 0 {
			fmt.Fprintf(b, "implies [%d] {\n", v.MaxDelay)
		} else {
			b.WriteString("implies {\n")
		}
		printChart(b, v.Trigger, depth+1)
		indent(b, depth)
		b.WriteString("} {\n")
		printChart(b, v.Consequent, depth+1)
		indent(b, depth)
		b.WriteString("}\n")
	case *chart.Async:
		indent(b, depth)
		b.WriteString("async {\n")
		for _, ch := range v.Children {
			printChart(b, ch, depth+1)
		}
		for _, a := range v.CrossArrows {
			indent(b, depth+1)
			fmt.Fprintf(b, "cross %s -> %s;\n", a.From, a.To)
		}
		indent(b, depth)
		b.WriteString("}\n")
	}
}

func printBlock(b *strings.Builder, kw string, children []chart.Chart, depth int) {
	indent(b, depth)
	b.WriteString(kw + " {\n")
	for _, ch := range children {
		printChart(b, ch, depth+1)
	}
	indent(b, depth)
	b.WriteString("}\n")
}

func printSCESC(b *strings.Builder, sc *chart.SCESC, depth int) {
	indent(b, depth)
	if sc.ChartName != "" {
		fmt.Fprintf(b, "scesc %s on %s {\n", sc.ChartName, sc.Clock)
	} else {
		fmt.Fprintf(b, "scesc on %s {\n", sc.Clock)
	}
	if len(sc.Instances) > 0 {
		indent(b, depth+1)
		fmt.Fprintf(b, "instances %s;\n", strings.Join(sc.Instances, ", "))
	}
	for _, line := range sc.Lines {
		indent(b, depth+1)
		b.WriteString("tick {")
		if len(line.Events) == 0 && line.Cond == nil {
			b.WriteString(" }\n")
			continue
		}
		b.WriteString("\n")
		for _, e := range line.Events {
			indent(b, depth+2)
			b.WriteString(markerSource(e))
			b.WriteString("\n")
		}
		if line.Cond != nil {
			indent(b, depth+2)
			fmt.Fprintf(b, "when %s;\n", guardSource(line.Cond))
		}
		indent(b, depth+1)
		b.WriteString("}\n")
	}
	for _, a := range sc.Arrows {
		indent(b, depth+1)
		fmt.Fprintf(b, "arrow %s -> %s;\n", a.From, a.To)
	}
	indent(b, depth)
	b.WriteString("}\n")
}

// markerSource renders one event marker as .cesc text.
func markerSource(e chart.EventSpec) string {
	if e.Negated {
		if e.Guard == nil {
			return "!" + e.Event + ";"
		}
		if isGuardAtom(e.Guard) {
			return "!" + e.Guard.String() + ": " + e.Event + ";"
		}
		return "!(" + guardSource(e.Guard) + "): " + e.Event + ";"
	}
	var sb strings.Builder
	if e.Label != "" && e.Label != e.Event {
		sb.WriteString(e.Label)
		sb.WriteString(" = ")
	}
	if e.Guard != nil {
		if isGuardAtom(e.Guard) {
			sb.WriteString(e.Guard.String())
		} else {
			sb.WriteString("(" + guardSource(e.Guard) + ")")
		}
		sb.WriteString(": ")
	}
	sb.WriteString(e.Event)
	switch {
	case e.Env:
		sb.WriteString(" @ env")
	case e.From != "" && e.To != "":
		fmt.Fprintf(&sb, " @ %s -> %s", e.From, e.To)
	}
	sb.WriteString(";")
	return sb.String()
}

func isGuardAtom(e expr.Expr) bool {
	switch e.(type) {
	case expr.PropRef, expr.EventRef:
		return true
	default:
		return false
	}
}

// guardSource renders an expression in the concrete guard syntax (the
// expr package's String already uses & | ! which the parser accepts).
func guardSource(e expr.Expr) string { return e.String() }
