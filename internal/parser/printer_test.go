package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/expr"
	"repro/internal/ocp"
	"repro/internal/readproto"
)

// reparse prints a chart and parses the output back.
func reparse(t *testing.T, name string, c chart.Chart) chart.Chart {
	t.Helper()
	src := Print(name, c)
	back, err := ParseChart(src)
	if err != nil {
		t.Fatalf("printed source does not reparse: %v\n%s", err, src)
	}
	return back
}

// chartsEquivalent compares structure, clocks, and per-leaf pattern
// expressions plus arrows.
func chartsEquivalent(t *testing.T, a, b chart.Chart) {
	t.Helper()
	if chart.Describe(a) != chart.Describe(b) {
		t.Fatalf("structure changed: %s vs %s", chart.Describe(a), chart.Describe(b))
	}
	la, lb := chart.Leaves(a), chart.Leaves(b)
	for i := range la {
		for j := range la[i].Lines {
			ea, eb := la[i].Lines[j].Expr().String(), lb[i].Lines[j].Expr().String()
			if ea != eb {
				t.Errorf("leaf %d line %d: %q vs %q", i, j, ea, eb)
			}
		}
		if len(la[i].Arrows) != len(lb[i].Arrows) {
			t.Errorf("leaf %d arrows: %v vs %v", i, la[i].Arrows, lb[i].Arrows)
			continue
		}
		for j := range la[i].Arrows {
			if la[i].Arrows[j] != lb[i].Arrows[j] {
				t.Errorf("leaf %d arrow %d: %v vs %v", i, j, la[i].Arrows[j], lb[i].Arrows[j])
			}
		}
	}
}

func TestPrintRoundTripCaseStudies(t *testing.T) {
	cases := []struct {
		name string
		c    chart.Chart
	}{
		{"OcpSimpleRead", ocp.SimpleReadChart()},
		{"OcpBurstRead", ocp.BurstReadChart()},
		{"AmbaAhbCli", amba.TransactionChart()},
		{"ReadSingle", readproto.SingleClockChart()},
		{"ReadMulti", readproto.MultiClockChart()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			back := reparse(t, tc.name, tc.c)
			chartsEquivalent(t, tc.c, back)
		})
	}
}

func TestPrintRoundTripStructural(t *testing.T) {
	mk := func(name string, evs ...string) *chart.SCESC {
		sc := &chart.SCESC{ChartName: name, Clock: "clk"}
		for _, e := range evs {
			sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{{Event: e}}})
		}
		return sc
	}
	c := &chart.Seq{ChartName: "top", Children: []chart.Chart{
		mk("head", "start"),
		&chart.Alt{Children: []chart.Chart{mk("l", "left"), mk("r", "right", "right2")}},
		&chart.Loop{Body: mk("b", "beat"), Min: 1, Max: chart.Unbounded},
		&chart.Par{Children: []chart.Chart{mk("p1", "x"), mk("p2", "y")}},
	}}
	back := reparse(t, "Top", c)
	chartsEquivalent(t, c, back)

	imp := &chart.Implies{
		Trigger:    mk("t", "req"),
		Consequent: mk("q", "gnt"),
	}
	back2 := reparse(t, "Imp", imp)
	chartsEquivalent(t, imp, back2)
}

func TestPrintRoundTripMarkers(t *testing.T) {
	sc := &chart.SCESC{
		ChartName: "markers", Clock: "clk", Instances: []string{"M", "S"},
		Lines: []chart.GridLine{
			{
				Events: []chart.EventSpec{
					{Event: "plain"},
					{Event: "cmd", Label: "c1", Guard: expr.Pr("ready"), From: "M", To: "S"},
					{Event: "gated", Guard: expr.And(expr.Pr("ready"), expr.Not(expr.Pr("stall")))},
					{Event: "forbidden", Negated: true},
					{Event: "ext", Env: true},
				},
				Cond: expr.Or(expr.Pr("a"), expr.Pr("b")),
			},
			{},
			{Events: []chart.EventSpec{{Event: "done", Label: "d1"}}},
		},
		Arrows: []chart.Arrow{{From: "c1", To: "d1"}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	back := reparse(t, "Markers", sc)
	chartsEquivalent(t, sc, back)
	bsc := back.(*chart.SCESC)
	var env, neg bool
	for _, e := range bsc.Lines[0].Events {
		if e.Env {
			env = true
		}
		if e.Negated {
			neg = true
		}
	}
	if !env || !neg {
		t.Error("env/negated markers lost in round trip")
	}
	if bsc.Lines[0].Cond == nil {
		t.Error("line condition lost")
	}
}

// TestPrintRoundTripRandom: random charts survive print-parse-print with
// a fixed point on the second print.
func TestPrintRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	events := []string{"e1", "e2", "e3", "e4"}
	props := []string{"p1", "p2"}
	randLeaf := func(name string) *chart.SCESC {
		sc := &chart.SCESC{ChartName: name, Clock: "clk"}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			var line chart.GridLine
			for _, e := range events[:1+rng.Intn(3)] {
				spec := chart.EventSpec{Event: e}
				if rng.Intn(3) == 0 {
					spec.Guard = expr.Pr(props[rng.Intn(len(props))])
				}
				if rng.Intn(5) == 0 {
					spec.Negated = true
				}
				line.Events = append(line.Events, spec)
			}
			sc.Lines = append(sc.Lines, line)
		}
		return sc
	}
	for round := 0; round < 30; round++ {
		var c chart.Chart
		switch rng.Intn(3) {
		case 0:
			c = randLeaf("leaf")
		case 1:
			c = &chart.Seq{Children: []chart.Chart{randLeaf("a"), randLeaf("b")}}
		default:
			c = &chart.Alt{Children: []chart.Chart{randLeaf("a"), randLeaf("b")}}
		}
		if c.Validate() != nil {
			continue
		}
		src1 := Print("R", c)
		back, err := ParseChart(src1)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, src1)
		}
		src2 := Print("R", back)
		if src1 != src2 {
			t.Fatalf("round %d: printing is not a fixed point:\n--- first\n%s\n--- second\n%s",
				round, src1, src2)
		}
	}
}

func TestPrintDeclaresProps(t *testing.T) {
	src := Print("P", &chart.SCESC{
		ChartName: "x", Clock: "clk",
		Lines: []chart.GridLine{{Events: []chart.EventSpec{{Event: "e", Guard: expr.Pr("zz")}}}},
	})
	if !strings.Contains(src, "prop zz;") {
		t.Errorf("props not declared:\n%s", src)
	}
}

func TestPrintRoundTripDeadlineImplies(t *testing.T) {
	src := `
cesc D {
  implies [4] {
    scesc T on clk { tick { req; } }
  } {
    scesc C on clk { tick { ack; } }
  }
}
`
	c, err := ParseChart(src)
	if err != nil {
		t.Fatal(err)
	}
	imp := c.(*chart.Implies)
	if imp.MaxDelay != 4 {
		t.Fatalf("max delay = %d, want 4", imp.MaxDelay)
	}
	printed := Print("D", c)
	if !strings.Contains(printed, "implies [4] {") {
		t.Errorf("deadline lost in print:\n%s", printed)
	}
	back, err := ParseChart(printed)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*chart.Implies).MaxDelay != 4 {
		t.Error("deadline lost in round trip")
	}
}

func TestPrintRoundTripGuardedNegation(t *testing.T) {
	src := `
cesc G {
  prop en;
  scesc on clk {
    tick { !en: stall; go; }
  }
}
`
	c, err := ParseChart(src)
	if err != nil {
		t.Fatal(err)
	}
	sc := c.(*chart.SCESC)
	var found bool
	for _, e := range sc.Lines[0].Events {
		if e.Negated && e.Guard != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("guarded negation not parsed")
	}
	printed := Print("G", c)
	back, err := ParseChart(printed)
	if err != nil {
		t.Fatalf("%v\n%s", err, printed)
	}
	chartsEquivalent(t, c, back)
}
