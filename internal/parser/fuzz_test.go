package parser

import (
	"testing"

	"repro/internal/chart"
)

// FuzzParseChart feeds arbitrary source to the chart parser. The parser
// must never panic, and any chart it accepts that also validates must
// survive a print/parse round trip unchanged — the law the conformance
// harness's regression store depends on.
func FuzzParseChart(f *testing.F) {
	f.Add(`scesc on clk { tick { req; } }`)
	f.Add(`scesc on clk {
  instances mst, slv;
  tick { L1 = req @ mst -> slv; when en; }
  tick { ack; !req; }
  arrow L1 -> ack;
}`)
	f.Add(`seq { scesc on clk { tick { a; } } scesc on clk { tick { b; } } }`)
	f.Add(`alt { scesc on clk { tick { a; } } scesc on clk { tick { b; } } }`)
	f.Add(`loop [1, 3] { scesc on clk { tick { a; } } }`)
	f.Add(`implies [2] { scesc on clk { tick { req; } } } { scesc on clk { tick { ack; } } }`)
	f.Add(`async {
  scesc on ck0 { tick { L1 = a; } }
  scesc on ck1 { tick { b; } tick { L2 = c; } }
  cross L1 -> L2;
}`)
	f.Add(`par { scesc on clk { tick { (p | q): a; } } scesc on clk { tick { !b; } } }`)
	f.Add(`cesc Spec { prop p; scesc on clk { tick { p: a; } } }`)
	f.Add("scesc on clk { tick { a }")
	f.Add("\x00\xff{{{")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseChart(src)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			return
		}
		printed := Print("fuzz", c)
		c2, err := ParseChart(printed)
		if err != nil {
			t.Fatalf("printed form fails to reparse: %v\n%s", err, printed)
		}
		if !chart.Equal(c, c2) {
			t.Fatalf("round-trip mismatch for %s\nprinted:\n%s", chart.Describe(c), printed)
		}
	})
}
