// Package wal is an append-only, per-session write-ahead journal for the
// cescd daemon. Each session owns a directory of numbered segment files
// holding CRC32-framed records; the server journals every accepted tick
// batch (and periodic monitor-state snapshots) so that after a crash it
// can rebuild each session and report the same verdicts as an
// uninterrupted run.
//
// The package is deliberately semantics-free: callers choose record
// kinds and payload encodings; wal owns framing, segment rotation, the
// fsync policy, snapshot-anchored garbage collection, and torn-tail
// recovery. A record is
//
//	| u32 payload length | u32 CRC32-IEEE(kind ‖ payload) | u8 kind | payload |
//
// in little-endian. On open, segments are scanned in order; a trailing
// record that is cut short or fails its CRC (the torn write of a crash)
// is truncated away and the journal resumes appending after the last
// intact record. Corruption anywhere before the tail is reported as an
// error — that is data loss, not a crash artifact.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// SyncPolicy selects when appended records are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs at most once per SyncEvery,
	// lazily at append time — bounded data-loss window, near-SyncNever
	// throughput.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at a per-batch fsync cost.
	SyncAlways
	// SyncNever leaves flushing to the OS; a machine crash can lose the
	// page-cache tail, a process crash loses nothing.
	SyncNever
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy inverts String; it accepts "always", "interval", and
// "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "", "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options tunes a Manager; zero values select the documented defaults.
type Options struct {
	// Dir is the journal root; one subdirectory per session.
	Dir string
	// SegmentBytes rotates to a fresh segment when the current one would
	// exceed this size (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// Faults optionally wires the deterministic fault plane into the
	// append ("wal.append") and fsync ("wal.sync") paths.
	Faults *faultinject.Plane
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// Stats aggregates journal activity across a manager, for /metrics.
type Stats struct {
	Appends  uint64 `json:"appends"`
	Syncs    uint64 `json:"syncs"`
	Bytes    uint64 `json:"bytes"`
	Replayed uint64 `json:"replayed_records"`
	// TornBytes counts bytes truncated from segment tails during open —
	// the torn final write of a crash.
	TornBytes uint64 `json:"torn_bytes"`
}

// Manager roots a journal directory and hands out per-session journals.
type Manager struct {
	opts Options

	appends  atomic.Uint64
	syncs    atomic.Uint64
	bytes    atomic.Uint64
	replayed atomic.Uint64
	torn     atomic.Uint64
}

// OpenManager ensures the root directory exists and returns a manager.
func OpenManager(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty journal directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	return &Manager{opts: opts}, nil
}

// Stats returns cumulative manager-wide counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Appends:   m.appends.Load(),
		Syncs:     m.syncs.Load(),
		Bytes:     m.bytes.Load(),
		Replayed:  m.replayed.Load(),
		TornBytes: m.torn.Load(),
	}
}

// List returns the session IDs that have journals under the root,
// sorted.
func (m *Manager) List() ([]string, error) {
	ents, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", m.opts.Dir, err)
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Remove deletes a session's journal directory (evicted or deleted
// sessions keep no history).
func (m *Manager) Remove(id string) error {
	return os.RemoveAll(filepath.Join(m.opts.Dir, id))
}

// Writable probes the journal root for writability by creating and
// removing a probe file — the readiness check behind /readyz, where "the
// disk went read-only" must pull the node out of rotation before appends
// start failing. Cheap enough for a load balancer's probe cadence.
func (m *Manager) Writable() error {
	probe := filepath.Join(m.opts.Dir, ".writable-probe")
	f, err := os.OpenFile(probe, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: journal dir not writable: %w", err)
	}
	f.Close()
	return os.Remove(probe)
}

// DiskUsage walks every session journal under the root and returns the
// total on-disk bytes plus the per-session breakdown. Journals racing a
// concurrent Remove are tolerated (counted as zero), so callers can
// size-budget a live directory.
func (m *Manager) DiskUsage() (total int64, perSession map[string]int64, err error) {
	ids, err := m.List()
	if err != nil {
		return 0, nil, err
	}
	perSession = make(map[string]int64, len(ids))
	for _, id := range ids {
		var n int64
		dir := filepath.Join(m.opts.Dir, id)
		walkErr := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.Type().IsRegular() {
				info, err := d.Info()
				if err != nil {
					return err
				}
				n += info.Size()
			}
			return nil
		})
		if walkErr != nil {
			if errors.Is(walkErr, fs.ErrNotExist) {
				continue // lost a race with Remove
			}
			return 0, nil, fmt.Errorf("wal: sizing %s: %w", dir, walkErr)
		}
		perSession[id] = n
		total += n
	}
	return total, perSession, nil
}

// Record is one framed journal entry.
type Record struct {
	Kind    byte
	Payload []byte
}

// frameOverhead is the per-record framing cost: length + CRC + kind.
const frameOverhead = 4 + 4 + 1

// maxPayload bounds a single record so a corrupt length field cannot
// drive an absurd allocation during replay.
const maxPayload = 64 << 20

// Journal is one session's append handle. All methods are safe for
// concurrent use.
type Journal struct {
	mgr *Manager
	dir string

	mu       sync.Mutex
	f        *os.File
	seg      uint64 // current segment index
	segSize  int64
	lastSync time.Time
	dirty    bool
	closed   bool
}

// segName renders the segment file name for an index.
func segName(i uint64) string { return fmt.Sprintf("%016d.wal", i) }

// segIndex parses a segment file name, reporting whether it is one.
func segIndex(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 16+4 {
		return 0, false
	}
	n, err := strconv.ParseUint(name[:16], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// OpenJournal opens (creating if absent) the journal for a session,
// replaying every intact record through fn in append order. A torn tail
// on the final segment is truncated; appends resume after the last
// intact record. A non-nil error from fn aborts the open.
func (m *Manager) OpenJournal(id string, fn func(Record) error) (*Journal, error) {
	dir := filepath.Join(m.opts.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{mgr: m, dir: dir, lastSync: time.Now()}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := j.scanSegment(seg, last, fn); err != nil {
			return nil, err
		}
	}
	if len(segs) == 0 {
		j.seg = 1
	} else {
		j.seg = segs[len(segs)-1]
	}
	path := filepath.Join(dir, segName(j.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	j.f = f
	j.segSize = st.Size()
	return j, nil
}

// listSegments returns the segment indices present in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var segs []uint64
	for _, e := range ents {
		if n, ok := segIndex(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// scanSegment replays one segment. On the final segment a trailing
// short or CRC-failing record is truncated away (torn write); anywhere
// else it is corruption and an error.
func (j *Journal) scanSegment(seg uint64, last bool, fn func(Record) error) error {
	path := filepath.Join(j.dir, segName(seg))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	var off int64
	var hdr [frameOverhead]byte
	for {
		n, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF {
			return j.truncateTail(path, off, int64(n), last)
		}
		if err != nil {
			return fmt.Errorf("wal: reading %s: %w", path, err)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		kind := hdr[8]
		if size > maxPayload {
			return j.truncateCorrupt(path, off, last,
				fmt.Sprintf("record length %d exceeds limit", size))
		}
		payload := make([]byte, size)
		if n, err := io.ReadFull(f, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return j.truncateTail(path, off, int64(frameOverhead+n), last)
			}
			return fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if recordCRC(kind, payload) != crc {
			return j.truncateCorrupt(path, off, last, "CRC mismatch")
		}
		if err := fn(Record{Kind: kind, Payload: payload}); err != nil {
			return err
		}
		j.mgr.replayed.Add(1)
		off += frameOverhead + int64(size)
	}
}

// truncateTail handles a record cut short at the end of a segment: a
// torn final write on the last segment is trimmed; anywhere else it is
// an error.
func (j *Journal) truncateTail(path string, off, extra int64, last bool) error {
	if !last {
		return fmt.Errorf("wal: %s: truncated record mid-journal at offset %d", path, off)
	}
	j.mgr.torn.Add(uint64(extra))
	if err := os.Truncate(path, off); err != nil {
		return fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	return nil
}

// truncateCorrupt handles an intact-length but corrupt record: torn
// tail rules on the final segment (everything from the bad record on is
// dropped), error elsewhere.
func (j *Journal) truncateCorrupt(path string, off int64, last bool, what string) error {
	if !last {
		return fmt.Errorf("wal: %s: %s at offset %d (mid-journal corruption)", path, what, off)
	}
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("wal: stat %s: %w", path, err)
	}
	j.mgr.torn.Add(uint64(st.Size() - off))
	if err := os.Truncate(path, off); err != nil {
		return fmt.Errorf("wal: truncating corrupt tail of %s: %w", path, err)
	}
	return nil
}

func recordCRC(kind byte, payload []byte) uint32 {
	c := crc32.NewIEEE()
	c.Write([]byte{kind})
	c.Write(payload)
	return c.Sum32()
}

// Append frames and writes one record, rotating segments by size and
// fsyncing per the manager's policy.
func (j *Journal) Append(kind byte, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(kind, payload)
}

func (j *Journal) appendLocked(kind byte, payload []byte) error {
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if err := j.mgr.opts.Faults.Hit("wal.append"); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	frame := int64(frameOverhead + len(payload))
	if j.segSize > 0 && j.segSize+frame > j.mgr.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	buf := make([]byte, frameOverhead, frameOverhead+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], recordCRC(kind, payload))
	buf[8] = kind
	buf = append(buf, payload...)
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("wal: writing %s: %w", j.f.Name(), err)
	}
	j.segSize += frame
	j.dirty = true
	j.mgr.appends.Add(1)
	j.mgr.bytes.Add(uint64(frame))
	return j.maybeSyncLocked()
}

// maybeSyncLocked applies the fsync policy after an append.
func (j *Journal) maybeSyncLocked() error {
	switch j.mgr.opts.Sync {
	case SyncAlways:
		return j.syncLocked()
	case SyncInterval:
		if time.Since(j.lastSync) >= j.mgr.opts.SyncEvery {
			return j.syncLocked()
		}
	}
	return nil
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.mgr.opts.Faults.Hit("wal.sync"); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", j.f.Name(), err)
	}
	j.dirty = false
	j.lastSync = time.Now()
	j.mgr.syncs.Add(1)
	return nil
}

// rotateLocked syncs and closes the current segment and opens the next.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("wal: closing %s: %w", j.f.Name(), err)
	}
	j.seg++
	path := filepath.Join(j.dir, segName(j.seg))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening %s: %w", path, err)
	}
	j.f = f
	j.segSize = 0
	return nil
}

// AppendCheckpoint rotates to a fresh segment, writes the record (a
// caller-encoded state snapshot that subsumes all earlier records),
// fsyncs it regardless of policy, and deletes every older segment —
// recovery then replays only the snapshot plus the tail appended after
// it.
func (j *Journal) AppendCheckpoint(kind byte, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("wal: journal closed")
	}
	if err := j.rotateLocked(); err != nil {
		return err
	}
	if err := j.appendLocked(kind, payload); err != nil {
		return err
	}
	if err := j.syncLocked(); err != nil {
		return err
	}
	segs, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg < j.seg {
			if err := os.Remove(filepath.Join(j.dir, segName(seg))); err != nil {
				return fmt.Errorf("wal: removing old segment: %w", err)
			}
		}
	}
	return nil
}

// Sync forces an fsync of buffered appends.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the journal without a final sync — the crash-simulation
// path: whatever the OS has not flushed is exactly what a real crash
// would lose under the configured policy.
func (j *Journal) Abandon() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	_ = j.f.Close()
}

// SegmentCount reports how many segment files the journal currently
// holds (tests assert checkpoint GC this way).
func (j *Journal) SegmentCount() (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	segs, err := listSegments(j.dir)
	return len(segs), err
}
