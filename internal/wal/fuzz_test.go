package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSegment frames the given records exactly as appendLocked does, so
// the fuzzer starts from intact journals and mutates from there.
func fuzzSegment(recs ...Record) []byte {
	var buf []byte
	for _, r := range recs {
		frame := make([]byte, frameOverhead)
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(r.Payload)))
		binary.LittleEndian.PutUint32(frame[4:8], recordCRC(r.Kind, r.Payload))
		frame[8] = r.Kind
		buf = append(buf, frame...)
		buf = append(buf, r.Payload...)
	}
	return buf
}

// FuzzWALReplay writes arbitrary bytes as a session's only journal
// segment and opens it: replay must either recover (possibly truncating
// a torn or corrupt tail) or fail with a clean error — never panic —
// and a recovered journal must accept appends again.
func FuzzWALReplay(f *testing.F) {
	intact := fuzzSegment(
		Record{Kind: 1, Payload: []byte(`{"spec":"Spec","mode":"detect"}`)},
		Record{Kind: 2, Payload: []byte(`{"seq":1,"events":["req"]}`)},
		Record{Kind: 2, Payload: []byte(`{"seq":2,"props":{"en":true}}`)},
	)
	f.Add(intact)
	torn := append([]byte{}, intact...)
	f.Add(torn[:len(torn)-3])
	flipped := append([]byte{}, intact...)
	flipped[13] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		sess := filepath.Join(dir, "s1")
		if err := os.MkdirAll(sess, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sess, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := OpenManager(Options{Dir: dir})
		if err != nil {
			t.Fatalf("manager open: %v", err)
		}
		j, err := m.OpenJournal("s1", func(Record) error { return nil })
		if err != nil {
			// A clean refusal is a valid outcome for corrupt input.
			return
		}
		// Recovery succeeded: the journal must be writable again, and a
		// second open must replay without error (the recovered file is
		// intact by construction).
		if err := j.Append(3, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		if _, err := m.OpenJournal("s1", func(Record) error { return nil }); err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
	})
}
