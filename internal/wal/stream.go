package wal

// Live-tail streaming. The cluster replicator ships a session's journal
// to its ring successor while the owner keeps appending; ReadFrom is the
// reader side of that: it scans intact records from a caller-held
// position, stops quietly at the (possibly still-growing) tail, and
// detects checkpoint pruning so the caller knows when the stream is no
// longer contiguous with what it shipped before.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// Position addresses a record boundary inside one session's journal: a
// segment index plus a byte offset into that segment. The zero Position
// means "from the beginning".
type Position struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// IsZero reports whether p is the beginning-of-journal position.
func (p Position) IsZero() bool { return p.Segment == 0 && p.Offset == 0 }

// ReadFrom scans the session's journal from pos, invoking fn for every
// intact record in order, and returns the position just past the last
// record consumed. It is designed for concurrent live tailing:
//
//   - It never truncates or repairs anything. A record cut short at the
//     end of the newest segment is the owner's in-flight append; the
//     scan stops there and a later call resumes at the same position.
//   - When pos addresses a segment that a checkpoint has pruned (or an
//     offset past the end of a rebuilt journal), the scan restarts from
//     the oldest remaining segment and reports reset=true: the caller's
//     downstream copy is stale and must be rebuilt from this stream.
//     reset is decided before any record is delivered, so every record
//     fn sees in one call is contiguous from the reported start.
//   - A segment pruned by a checkpoint racing the scan ends the call
//     early with no error; the next call observes the prune as a normal
//     reset. A journal directory that does not exist yet yields no
//     records and no error.
//
// A structurally corrupt record anywhere before the newest segment's
// tail is reported as an error, exactly like open-time recovery.
func (m *Manager) ReadFrom(id string, pos Position, fn func(Record) error) (next Position, reset bool, err error) {
	dir := filepath.Join(m.opts.Dir, id)
scan:
	for restarts := 0; ; restarts++ {
		segs, err := listSegments(dir)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return pos, reset, nil
			}
			return pos, reset, err
		}
		if len(segs) == 0 {
			return pos, reset, nil
		}
		start := pos
		idx := -1
		if start.Segment == 0 {
			start = Position{Segment: segs[0]}
			idx = 0
		} else {
			for i, seg := range segs {
				if seg == start.Segment {
					idx = i
					break
				}
			}
			if idx < 0 {
				// The segment we were reading has been pruned: everything
				// shipped so far is subsumed by a snapshot record at the
				// head of the oldest remaining segment.
				start = Position{Segment: segs[0]}
				idx = 0
				reset = true
			}
		}
		cur := start
		for i := idx; i < len(segs); i++ {
			seg := segs[i]
			off := int64(0)
			if seg == start.Segment {
				off = start.Offset
			}
			last := i == len(segs)-1
			consumed, stopped, err := scanSegmentFrom(filepath.Join(dir, segName(seg)), off, last, fn)
			switch {
			case errors.Is(err, errSegmentVanished), errors.Is(err, errOffsetPastEnd):
				// A checkpoint raced the scan. Both conditions surface
				// before the affected segment delivers anything; if this
				// was the first segment no record has been delivered at
				// all, so the whole scan can restart as a reset.
				if i == idx {
					if restarts >= 3 {
						return pos, reset, fmt.Errorf("wal: session %s: journal kept changing during scan", id)
					}
					pos = Position{}
					reset = true
					continue scan
				}
				// Records from earlier segments were delivered and are
				// contiguous from start; stop cleanly after them and let
				// the next call observe the prune as a reset.
				return cur, reset, nil
			case err != nil:
				return Position{Segment: seg, Offset: off + consumed}, reset, err
			}
			cur = Position{Segment: seg, Offset: off + consumed}
			if stopped {
				break
			}
		}
		return cur, reset, nil
	}
}

// errSegmentVanished marks a segment deleted between listing and open —
// a checkpoint racing the scan.
var errSegmentVanished = errors.New("wal: segment vanished during scan")

// errOffsetPastEnd marks a resume offset beyond the segment's current
// size — the journal was rebuilt (shorter) under the same name.
var errOffsetPastEnd = errors.New("wal: resume offset past end of segment")

// scanSegmentFrom reads intact records from one segment starting at off.
// It returns the bytes consumed past off and stopped=true when it hit an
// incomplete tail record (only tolerated on the newest segment; anywhere
// else it is corruption).
func scanSegmentFrom(path string, off int64, last bool, fn func(Record) error) (consumed int64, stopped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, false, errSegmentVanished
		}
		return 0, false, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, false, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if off > st.Size() {
		return 0, false, errOffsetPastEnd
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, false, fmt.Errorf("wal: seeking %s: %w", path, err)
	}
	var hdr [frameOverhead]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return consumed, false, nil
		}
		if err == io.ErrUnexpectedEOF {
			// The owner's append is in flight; resume here next call.
			if !last {
				return consumed, true, fmt.Errorf("wal: %s: truncated record mid-journal at offset %d", path, off+consumed)
			}
			return consumed, true, nil
		}
		if err != nil {
			return consumed, true, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		kind := hdr[8]
		if size > maxPayload {
			return consumed, true, fmt.Errorf("wal: %s: record length %d exceeds limit at offset %d", path, size, off+consumed)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				if !last {
					return consumed, true, fmt.Errorf("wal: %s: truncated record mid-journal at offset %d", path, off+consumed)
				}
				return consumed, true, nil
			}
			return consumed, true, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if recordCRC(kind, payload) != crc {
			if !last {
				return consumed, true, fmt.Errorf("wal: %s: CRC mismatch at offset %d (mid-journal corruption)", path, off+consumed)
			}
			// On the newest segment a CRC mismatch at the tail is treated
			// like an in-flight write: stop and let the next call retry.
			// Real corruption stalls the stream here, which the
			// replication-lag gauge makes visible.
			return consumed, true, nil
		}
		if err := fn(Record{Kind: kind, Payload: payload}); err != nil {
			return consumed, true, err
		}
		consumed += frameOverhead + int64(size)
	}
}

// Distance reports how many journal bytes lie between pos and the
// session's current end — the replication lag of a downstream reader at
// pos. A pruned (or zero) position counts the whole remaining journal.
func (m *Manager) Distance(id string, pos Position) (int64, error) {
	dir := filepath.Join(m.opts.Dir, id)
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	var total int64
	for _, seg := range segs {
		if pos.Segment != 0 && seg < pos.Segment {
			continue
		}
		st, err := os.Stat(filepath.Join(dir, segName(seg)))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // pruned mid-walk
			}
			return 0, err
		}
		size := st.Size()
		if seg == pos.Segment {
			size -= pos.Offset
			if size < 0 {
				size = 0
			}
		}
		total += size
	}
	return total, nil
}

// End returns the position just past the last byte of the session's
// journal (zero when no journal exists).
func (m *Manager) End(id string) (Position, error) {
	dir := filepath.Join(m.opts.Dir, id)
	segs, err := listSegments(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Position{}, nil
		}
		return Position{}, err
	}
	if len(segs) == 0 {
		return Position{}, nil
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(filepath.Join(dir, segName(last)))
	if err != nil {
		return Position{}, err
	}
	return Position{Segment: last, Offset: st.Size()}, nil
}
