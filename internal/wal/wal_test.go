package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func openManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	m, err := OpenManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func collect(t *testing.T, m *Manager, id string) (*Journal, []Record) {
	t.Helper()
	var recs []Record
	j, err := m.OpenJournal(id, func(r Record) error {
		recs = append(recs, Record{Kind: r.Kind, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

// TestAppendReplayRoundTrip checks records come back in order, intact,
// across reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	m := openManager(t, Options{})
	j, recs := collect(t, m, "s1")
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	var want []Record
	for i := 0; i < 100; i++ {
		r := Record{Kind: byte(1 + i%3), Payload: []byte(fmt.Sprintf("payload-%03d", i))}
		want = append(want, r)
		if err := j.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, got := collect(t, m, "s1")
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d = %v/%q, want %v/%q", i, got[i].Kind, got[i].Payload, want[i].Kind, want[i].Payload)
		}
	}
	if s := m.Stats(); s.Appends != 100 || s.Replayed != 100 {
		t.Errorf("stats = %+v", s)
	}
}

// TestSegmentRotation checks appends spill across segments and still
// replay completely.
func TestSegmentRotation(t *testing.T) {
	m := openManager(t, Options{SegmentBytes: 256})
	j, _ := collect(t, m, "s1")
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if err := j.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	n, err := j.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("segments = %d, want >= 3 with 256-byte rotation", n)
	}
	j.Close()
	j2, recs := collect(t, m, "s1")
	defer j2.Close()
	if len(recs) != 10 {
		t.Fatalf("replayed %d records across segments, want 10", len(recs))
	}
}

// TestTornTailTruncated checks a record cut mid-write (crash) is dropped
// and the journal keeps working.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	j, _ := collect(t, m, "s1")
	for i := 0; i < 5; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate a torn final write: append half a frame to the segment.
	seg := filepath.Join(dir, "s1", segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xAB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs := collect(t, m, "s1")
	if len(recs) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(recs))
	}
	if m.Stats().TornBytes == 0 {
		t.Error("torn_bytes not counted")
	}
	// The journal must accept appends after the truncation, and the new
	// record must survive the next replay.
	if err := j2.Append(2, []byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, recs := collect(t, m, "s1")
	defer j3.Close()
	if len(recs) != 6 || string(recs[5].Payload) != "after-tear" {
		t.Fatalf("post-tear replay = %d records (last %q)", len(recs), recs[len(recs)-1].Payload)
	}
}

// TestCorruptTailTruncated checks a bit-flipped final record fails its
// CRC and is dropped like a torn write.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir})
	j, _ := collect(t, m, "s1")
	for i := 0; i < 3; i++ {
		if err := j.Append(1, []byte("record-payload")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	seg := filepath.Join(dir, "s1", segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload bit of the last record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := collect(t, m, "s1")
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after CRC corruption, want 2", len(recs))
	}
}

// TestMidJournalCorruptionErrors checks corruption before the tail is a
// loud error, not silent data loss.
func TestMidJournalCorruptionErrors(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, Options{Dir: dir, SegmentBytes: 64})
	j, _ := collect(t, m, "s1")
	for i := 0; i < 6; i++ {
		if err := j.Append(1, bytes.Repeat([]byte("y"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Corrupt the FIRST segment; a later segment exists, so this is
	// mid-journal corruption.
	seg := filepath.Join(dir, "s1", segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = m.OpenJournal("s1", func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corruption") {
		t.Fatalf("mid-journal corruption error = %v, want loud error", err)
	}
}

// TestCheckpointGC checks AppendCheckpoint leaves only the snapshot
// segment plus later appends.
func TestCheckpointGC(t *testing.T) {
	m := openManager(t, Options{SegmentBytes: 128})
	j, _ := collect(t, m, "s1")
	for i := 0; i < 8; i++ {
		if err := j.Append(1, bytes.Repeat([]byte("z"), 60)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := j.SegmentCount()
	if before < 2 {
		t.Fatalf("want multiple segments before checkpoint, got %d", before)
	}
	if err := j.AppendCheckpoint(9, []byte("snapshot-state")); err != nil {
		t.Fatal(err)
	}
	after, _ := j.SegmentCount()
	if after != 1 {
		t.Fatalf("segments after checkpoint = %d, want 1", after)
	}
	if err := j.Append(1, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, recs := collect(t, m, "s1")
	defer j2.Close()
	if len(recs) != 2 || recs[0].Kind != 9 || string(recs[1].Payload) != "tail" {
		t.Fatalf("post-checkpoint replay = %+v, want [snapshot, tail]", recs)
	}
}

// TestSyncPolicies parses the flag spellings and exercises SyncAlways
// counting.
func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"", SyncInterval, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseSyncPolicy(%q) accepted", tc.in)
		}
	}
	m := openManager(t, Options{Sync: SyncAlways})
	j, _ := collect(t, m, "s1")
	defer j.Close()
	for i := 0; i < 4; i++ {
		if err := j.Append(1, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.Syncs < 4 {
		t.Errorf("SyncAlways syncs = %d, want >= 4", s.Syncs)
	}
}

// TestFaultInjectionOnAppend checks the wal.append fault point surfaces
// as an append error without corrupting the journal.
func TestFaultInjectionOnAppend(t *testing.T) {
	plane := faultinject.New(1).Add(faultinject.Rule{
		Point: "wal.append", Kind: faultinject.KindError, After: 2, Every: 0,
	})
	m := openManager(t, Options{Faults: plane})
	j, _ := collect(t, m, "s1")
	var errs int
	for i := 0; i < 5; i++ {
		if err := j.Append(1, []byte(fmt.Sprintf("r%d", i))); err != nil {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("injected errors = %d, want 1", errs)
	}
	j.Close()
	j2, recs := collect(t, m, "s1")
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (failed append must not write)", len(recs))
	}
}

// TestManagerListRemove checks session enumeration and removal.
func TestManagerListRemove(t *testing.T) {
	m := openManager(t, Options{})
	for _, id := range []string{"b", "a"} {
		j, _ := collect(t, m, id)
		j.Close()
	}
	ids, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("List = %v", ids)
	}
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	ids, _ = m.List()
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("after Remove, List = %v", ids)
	}
}
