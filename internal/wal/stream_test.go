package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func streamAll(t *testing.T, m *Manager, id string, pos Position) ([]Record, Position, bool) {
	t.Helper()
	var recs []Record
	next, reset, err := m.ReadFrom(id, pos, func(r Record) error {
		recs = append(recs, Record{Kind: r.Kind, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return recs, next, reset
}

func TestReadFromTailsLiveJournal(t *testing.T) {
	m, err := OpenManager(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.OpenJournal("s1", func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	for i := 0; i < 5; i++ {
		if err := j.Append(2, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, pos, reset := streamAll(t, m, "s1", Position{})
	if reset {
		t.Fatal("fresh read reported reset")
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	// Appends after the cursor are picked up incrementally.
	for i := 5; i < 8; i++ {
		if err := j.Append(2, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, pos2, reset := streamAll(t, m, "s1", pos)
	if reset {
		t.Fatal("incremental read reported reset")
	}
	if len(recs) != 3 {
		t.Fatalf("incremental read got %d records, want 3", len(recs))
	}
	if string(recs[0].Payload) != "rec-5" {
		t.Fatalf("incremental read starts at %q, want rec-5", recs[0].Payload)
	}
	// Nothing new: cursor sticks.
	recs, pos3, _ := streamAll(t, m, "s1", pos2)
	if len(recs) != 0 || pos3 != pos2 {
		t.Fatalf("idle read returned %d records, pos %+v (want 0, %+v)", len(recs), pos3, pos2)
	}
}

func TestReadFromCrossesSegments(t *testing.T) {
	m, err := OpenManager(Options{Dir: t.TempDir(), SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.OpenJournal("s1", func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 20; i++ {
		if err := j.Append(2, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := j.SegmentCount(); n < 2 {
		t.Fatalf("want multiple segments, got %d", n)
	}
	recs, _, reset := streamAll(t, m, "s1", Position{})
	if reset || len(recs) != 20 {
		t.Fatalf("got %d records (reset=%v), want 20", len(recs), reset)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("payload-%02d", i); string(r.Payload) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Payload, want)
		}
	}
}

func TestReadFromStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManager(Options{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.OpenJournal("s1", func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight append: a frame header with no payload yet.
	path := filepath.Join(dir, "s1", segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{200, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, pos, reset := streamAll(t, m, "s1", Position{})
	if reset || len(recs) != 1 {
		t.Fatalf("got %d records (reset=%v), want 1", len(recs), reset)
	}
	// The cursor must sit at the start of the torn frame so a later call
	// can resume once the writer completes it.
	st, _ := os.Stat(path)
	if pos.Offset >= st.Size() {
		t.Fatalf("cursor %d advanced past the intact region (file %d)", pos.Offset, st.Size())
	}
}

func TestReadFromResetsAfterCheckpoint(t *testing.T) {
	m, err := OpenManager(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.OpenJournal("s1", func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 4; i++ {
		if err := j.Append(2, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_, pos, _ := streamAll(t, m, "s1", Position{})

	// Checkpoint prunes everything the reader has shipped.
	if err := j.AppendCheckpoint(3, []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(2, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	recs, _, reset := streamAll(t, m, "s1", pos)
	if !reset {
		t.Fatal("read after checkpoint did not report reset")
	}
	if len(recs) != 2 || recs[0].Kind != 3 || string(recs[1].Payload) != "tail" {
		t.Fatalf("reset read got %d records (first kind %d), want snapshot+tail", len(recs), recs[0].Kind)
	}
}

func TestReadFromMissingJournal(t *testing.T) {
	m, err := OpenManager(Options{Dir: t.TempDir(), Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs, pos, reset := streamAll(t, m, "nope", Position{})
	if len(recs) != 0 || reset || !pos.IsZero() {
		t.Fatalf("missing journal: got %d records, reset=%v, pos=%+v", len(recs), reset, pos)
	}
}

func TestDistanceAndEnd(t *testing.T) {
	m, err := OpenManager(Options{Dir: t.TempDir(), SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.OpenJournal("s1", func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if d, _ := m.Distance("s1", Position{}); d != 0 {
		t.Fatalf("empty journal distance = %d", d)
	}
	for i := 0; i < 12; i++ {
		if err := j.Append(2, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	end, err := m.End("s1")
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.Distance("s1", Position{})
	if err != nil {
		t.Fatal(err)
	}
	if full == 0 {
		t.Fatal("full distance is zero after appends")
	}
	if d, _ := m.Distance("s1", end); d != 0 {
		t.Fatalf("distance at end = %d, want 0", d)
	}
	// A caught-up reader's position equals End.
	_, pos, _ := streamAll(t, m, "s1", Position{})
	if d, _ := m.Distance("s1", pos); d != 0 {
		t.Fatalf("distance at reader position = %d, want 0", d)
	}
}
