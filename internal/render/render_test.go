package render

import (
	"strings"
	"testing"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/ocp"
	"repro/internal/readproto"
)

func TestASCIIFig6(t *testing.T) {
	out := ASCII(ocp.SimpleReadChart())
	for _, want := range []string{
		"SCESC ocp_simple_read (clock ocp_clk)",
		"Master", "Slave",
		"t0", "t1",
		"MCmd_rd", "SResp",
		"causality:",
		"cmd (t0) --> resp (t1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIMarkerForms(t *testing.T) {
	sc := &chart.SCESC{
		ChartName: "m", Clock: "clk", Instances: []string{"A"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: "env_ev", Env: true},
				{Event: "local", From: "A"},
			}},
		},
	}
	out := ASCII(sc)
	if !strings.Contains(out, "env_ev (env)") {
		t.Errorf("env marker missing:\n%s", out)
	}
	if !strings.Contains(out, "local [A]") {
		t.Errorf("single-end marker missing:\n%s", out)
	}
}

func TestASCIIChartTree(t *testing.T) {
	c := &chart.Seq{ChartName: "top", Children: []chart.Chart{
		ocp.SimpleReadChart(),
		&chart.Loop{Body: amba.TransactionChart(), Min: 1, Max: chart.Unbounded},
	}}
	// Both children share no clock, so skip validation — rendering is
	// structure-only.
	out := ASCIIChart(c)
	for _, want := range []string{"seq {", "loop [1, *] {", "SCESC ocp_simple_read", "SCESC amba_ahb_cli"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestASCIIChartAllNodes(t *testing.T) {
	mk := func(n string) *chart.SCESC {
		return &chart.SCESC{ChartName: n, Clock: "c", Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: n + "_e", Label: n + "_l"}}},
		}}
	}
	c := &chart.Alt{Children: []chart.Chart{
		&chart.Par{Children: []chart.Chart{mk("p1"), mk("p2")}},
		&chart.Implies{Trigger: mk("t"), Consequent: mk("q")},
	}}
	out := ASCIIChart(c)
	for _, want := range []string{"alt {", "par {", "implies {"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	a := &chart.Async{
		Children:    []chart.Chart{mk("l"), mk("r")},
		CrossArrows: []chart.Arrow{{From: "l_l", To: "r_l"}},
	}
	out2 := ASCIIChart(a)
	if !strings.Contains(out2, "async {") || !strings.Contains(out2, "cross l_l -> r_l") {
		t.Errorf("async render:\n%s", out2)
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg := SVG(readproto.SingleClockChart())
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg"`,
		"</svg>",
		"Master", "S_CNT",
		"req1", "data1",
		"causality:",
		"marker id=\"arr\"",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGEscapes(t *testing.T) {
	sc := &chart.SCESC{
		ChartName: "a<b&c", Clock: "clk", Instances: []string{"X"},
		Lines: []chart.GridLine{{Events: []chart.EventSpec{{Event: "e", From: "X"}}}},
	}
	svg := SVG(sc)
	if strings.Contains(svg, "a<b&c") {
		t.Error("unescaped special characters in SVG")
	}
	if !strings.Contains(svg, "a&lt;b&amp;c") {
		t.Error("escaped name missing")
	}
}
