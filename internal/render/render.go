// Package render draws CESC charts — the visual syntax of the paper's
// figures — as ASCII art for terminals and as SVG for documentation.
// Instances are vertical lifelines, grid lines are horizontal clock
// ticks, events are labelled markers between lifelines (or on the frame
// for environment events), and causality arrows are listed with their
// tick spans.
package render

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chart"
)

// ASCII renders an SCESC as fixed-width text.
func ASCII(sc *chart.SCESC) string {
	cols := columnLayout(sc)
	var b strings.Builder
	fmt.Fprintf(&b, "SCESC %s (clock %s)\n", sc.ChartName, sc.Clock)
	// Header: instance names.
	header := make([]byte, cols.width)
	for i := range header {
		header[i] = ' '
	}
	for _, inst := range sc.Instances {
		x := cols.x[inst]
		copy(header[x-len(inst)/2:], inst)
	}
	b.Write(header)
	b.WriteByte('\n')
	// Grid lines.
	for i, line := range sc.Lines {
		row := make([]byte, cols.width)
		for j := range row {
			row[j] = '-'
		}
		for _, inst := range sc.Instances {
			row[cols.x[inst]] = '+'
		}
		fmt.Fprintf(&b, "%s  t%d\n", row, i)
		// Event markers between grid lines.
		var parts []string
		for _, e := range line.Events {
			parts = append(parts, markerText(e))
		}
		if line.Cond != nil {
			parts = append(parts, "when "+line.Cond.String())
		}
		if len(parts) > 0 {
			lifelines := make([]byte, cols.width)
			for j := range lifelines {
				lifelines[j] = ' '
			}
			for _, inst := range sc.Instances {
				lifelines[cols.x[inst]] = '|'
			}
			fmt.Fprintf(&b, "%s      %s\n", lifelines, strings.Join(parts, "; "))
		}
	}
	if len(sc.Arrows) > 0 {
		b.WriteString("causality:\n")
		labels := sc.Labels()
		for _, a := range sc.Arrows {
			from, to := labels[a.From], labels[a.To]
			fmt.Fprintf(&b, "  %s (t%d) --> %s (t%d)\n", a.From, from.Tick, a.To, to.Tick)
		}
	}
	return b.String()
}

func markerText(e chart.EventSpec) string {
	s := e.String()
	switch {
	case e.Env:
		s += " (env)"
	case e.From != "" && e.To != "":
		s += fmt.Sprintf(" [%s -> %s]", e.From, e.To)
	case e.From != "":
		s += fmt.Sprintf(" [%s]", e.From)
	}
	return s
}

type layout struct {
	x     map[string]int
	width int
}

func columnLayout(sc *chart.SCESC) layout {
	l := layout{x: make(map[string]int)}
	x := 8
	for _, inst := range sc.Instances {
		l.x[inst] = x
		x += maxInt(len(inst)+8, 16)
	}
	if len(sc.Instances) == 0 {
		x = 24
	}
	l.width = x
	return l
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ASCIIChart renders any chart: SCESC leaves are drawn fully, structure
// nodes are rendered as an indented tree.
func ASCIIChart(c chart.Chart) string {
	var b strings.Builder
	renderTree(&b, c, 0)
	return b.String()
}

func renderTree(b *strings.Builder, c chart.Chart, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v := c.(type) {
	case *chart.SCESC:
		for _, line := range strings.Split(strings.TrimRight(ASCII(v), "\n"), "\n") {
			b.WriteString(indent + line + "\n")
		}
	case *chart.Seq:
		b.WriteString(indent + "seq {\n")
		for _, ch := range v.Children {
			renderTree(b, ch, depth+1)
		}
		b.WriteString(indent + "}\n")
	case *chart.Par:
		b.WriteString(indent + "par {\n")
		for _, ch := range v.Children {
			renderTree(b, ch, depth+1)
		}
		b.WriteString(indent + "}\n")
	case *chart.Alt:
		b.WriteString(indent + "alt {\n")
		for _, ch := range v.Children {
			renderTree(b, ch, depth+1)
		}
		b.WriteString(indent + "}\n")
	case *chart.Loop:
		hi := "*"
		if v.Max != chart.Unbounded {
			hi = fmt.Sprint(v.Max)
		}
		fmt.Fprintf(b, "%sloop [%d, %s] {\n", indent, v.Min, hi)
		renderTree(b, v.Body, depth+1)
		b.WriteString(indent + "}\n")
	case *chart.Implies:
		b.WriteString(indent + "implies {\n")
		renderTree(b, v.Trigger, depth+1)
		b.WriteString(indent + "} {\n")
		renderTree(b, v.Consequent, depth+1)
		b.WriteString(indent + "}\n")
	case *chart.Async:
		b.WriteString(indent + "async {\n")
		for _, ch := range v.Children {
			renderTree(b, ch, depth+1)
		}
		for _, a := range v.CrossArrows {
			fmt.Fprintf(b, "%s  cross %s -> %s\n", indent, a.From, a.To)
		}
		b.WriteString(indent + "}\n")
	}
}

// SVG renders an SCESC as a standalone SVG document.
func SVG(sc *chart.SCESC) string {
	const (
		colGap   = 160
		rowGap   = 56
		marginX  = 60
		marginY  = 50
		tickPadY = 26
	)
	instX := make(map[string]int)
	for i, inst := range sc.Instances {
		instX[inst] = marginX + i*colGap
	}
	width := marginX*2 + maxInt(len(sc.Instances)-1, 1)*colGap
	height := marginY*2 + len(sc.Lines)*rowGap + tickPadY

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n",
		width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-weight="bold">SCESC %s (clock %s)</text>`+"\n",
		marginX, esc(sc.ChartName), esc(sc.Clock))
	// Lifelines.
	bottom := marginY + len(sc.Lines)*rowGap
	for _, inst := range sc.Instances {
		x := instX[inst]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", x, marginY, x, bottom)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", x, marginY-10, esc(inst))
	}
	// Grid lines and markers.
	for i, line := range sc.Lines {
		y := marginY + (i+1)*rowGap - rowGap/2
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999" stroke-dasharray="4 3"/>`+"\n",
			marginX-30, y, width-marginX+30, y)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#555">t%d</text>`+"\n", 8, y+4, i)
		texts := make([]string, 0, len(line.Events)+1)
		for _, e := range line.Events {
			texts = append(texts, e.String())
			if e.From != "" && e.To != "" {
				x1, x2 := instX[e.From], instX[e.To]
				fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="blue" marker-end="url(#arr)"/>`+"\n",
					x1, y, x2, y)
			}
		}
		if line.Cond != nil {
			texts = append(texts, "when "+line.Cond.String())
		}
		if len(texts) > 0 {
			midX := width / 2
			fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" fill="#003">%s</text>`+"\n",
				midX, y-6, esc(strings.Join(texts, "; ")))
		}
	}
	// Arrow marker definition and causality list.
	b.WriteString(`<defs><marker id="arr" markerWidth="8" markerHeight="8" refX="6" refY="3" orient="auto"><path d="M0,0 L6,3 L0,6 z" fill="blue"/></marker></defs>` + "\n")
	if len(sc.Arrows) > 0 {
		labels := sc.Labels()
		var items []string
		for _, a := range sc.Arrows {
			items = append(items, fmt.Sprintf("%s(t%d) -> %s(t%d)",
				a.From, labels[a.From].Tick, a.To, labels[a.To].Tick))
		}
		sort.Strings(items)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#900">causality: %s</text>`+"\n",
			marginX, bottom+tickPadY, esc(strings.Join(items, ", ")))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
