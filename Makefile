GO ?= go

.PHONY: all build vet test race check crashtest bench bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: build + vet + tests under the race detector.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

# Fault-tolerance suite: crash-recovery, quarantine, fault-injection,
# and client retry/exactly-once tests, under the race detector.
crashtest:
	$(GO) test -race -v -run 'Crash|Recovery|Quarantine|Dedup|Journal|Resume|ExactlyOnce|Injected|Truncated' \
		./internal/server/ ./internal/client/ ./internal/wal/ ./internal/faultinject/ ./internal/trace/

# Runs the in-tree benchmarks and records the machine-readable summary
# that tracks the perf trajectory across PRs (packed vs map engine, WAL,
# ingest) into BENCH_PR3.json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/cescbench -json BENCH_PR3.json

# Machine-readable micro-benchmark summary (name, ns/op, allocs/op).
bench-json:
	$(GO) run ./cmd/cescbench -json BENCH_local.json

clean:
	$(GO) clean ./...
	rm -f BENCH_local.json
