GO ?= go

.PHONY: all build vet test race check crashtest bench bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: build + vet + tests under the race detector.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

# Fault-tolerance suite: crash-recovery, quarantine, fault-injection,
# and client retry/exactly-once tests, under the race detector.
crashtest:
	$(GO) test -race -v -run 'Crash|Recovery|Quarantine|Dedup|Journal|Resume|ExactlyOnce|Injected|Truncated' \
		./internal/server/ ./internal/client/ ./internal/wal/ ./internal/faultinject/ ./internal/trace/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable micro-benchmark summary (name, ns/op, allocs/op).
bench-json:
	$(GO) run ./cmd/cescbench -json BENCH_local.json

clean:
	$(GO) clean ./...
	rm -f BENCH_local.json
