GO ?= go

.PHONY: all build vet test race check crashtest fuzz conformance bench bench-json obs-bench perfgate lanebench minetest minebench soaktest clustertest clean

all: check

# Per-target budget for `make fuzz` (native Go fuzzing). Short by design:
# the checked-in corpora replay in ordinary `go test`, so this is a smoke
# of the mutation engine, not the soak.
FUZZTIME ?= 10s

# Fixed-seed conformance campaign size for `make conformance`.
CONFORM_N ?= 500
CONFORM_SEED ?= 1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: build + vet + tests under the race detector
# (includes the fixed-seed mini-campaign and regression replay), then the
# full conformance campaign and a short fuzz budget per target.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...
	$(MAKE) conformance
	$(MAKE) clustertest
	$(MAKE) minetest
	$(MAKE) fuzz

# Whole-stack differential fuzzing: random charts + adversarial traces
# vs. the reference semantics, all execution tiers, server ingest, and
# crash recovery. Fixed seed — deterministic in CI; divergences land as
# replayable pairs in testdata/regressions/ and fail the run.
conformance:
	$(GO) run ./cmd/cescfuzz -n $(CONFORM_N) -seed $(CONFORM_SEED) -q -out testdata/regressions

# Native Go fuzz targets, one package at a time (go test allows a single
# -fuzz pattern per invocation). Checked-in seed corpora live under each
# package's testdata/fuzz/.
fuzz:
	$(GO) test ./internal/parser/ -run='^$$' -fuzz=FuzzParseChart -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/trace/ -run='^$$' -fuzz=FuzzStreamVCD -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wal/ -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/mine/ -run='^$$' -fuzz=FuzzMine -fuzztime=$(FUZZTIME)

# Spec-mining suite: the miner and its protocol models under the race
# detector (golden corpus byte-stability, gate soundness, mutant
# discrimination, the 64-lane corpus replay), then the cescmine CLI
# mining every checked-in corpus with the validation gate armed — the
# CI mining smoke.
minetest:
	$(GO) test -race ./internal/mine/ ./internal/axi/ ./cmd/cescmine/
	$(GO) run ./cmd/cescmine -q -name smoke_ocp -clock ocp_clk testdata/corpus/ocp_fig6_read.ndjson >/dev/null
	$(GO) run ./cmd/cescmine -q -name smoke_ahb -clock ahb_clk testdata/corpus/ahb_cli.ndjson >/dev/null
	$(GO) run ./cmd/cescmine -q -name smoke_axi -clock aclk testdata/corpus/axi4_burst.ndjson >/dev/null

# Mining-throughput snapshot: corpus decode, inference, and the
# validation gate on in-process model corpora; refreshes BENCH_MINE.json
# and appends the run to the versioned BENCH_HISTORY.jsonl.
minebench:
	$(GO) run ./cmd/cescbench -mine-json BENCH_MINE.json -history BENCH_HISTORY.jsonl

# Fault-tolerance suite: crash-recovery, quarantine, fault-injection,
# and client retry/exactly-once tests, under the race detector.
crashtest:
	$(GO) test -race -v -run 'Crash|Recovery|Quarantine|Dedup|Journal|Resume|ExactlyOnce|Injected|Truncated' \
		./internal/server/ ./internal/client/ ./internal/wal/ ./internal/faultinject/ ./internal/trace/

# Runs the in-tree benchmarks and records the machine-readable summary
# that tracks the perf trajectory across PRs (packed vs map engine, WAL,
# ingest) into BENCH_PR3.json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/cescbench -json BENCH_PR3.json

# Machine-readable micro-benchmark summary (name, ns/op, allocs/op).
bench-json:
	$(GO) run ./cmd/cescbench -json BENCH_local.json

# Observability-overhead suite: packed stepping with tracing disabled
# (must stay at 0 allocs/op), with the span ring recording per tick,
# with full violation provenance armed, and with the flight recorder
# armed, on the Fig. 6/7/8 workloads — plus the HLC and cross-node span
# propagation micro-benches. Refreshes the committed BENCH_PR10.json.
obs-bench:
	$(GO) run ./cmd/cescbench -obs-json BENCH_PR10.json

# Perf gate: re-run the observability suite against BENCH_PR10.json
# (which supersedes the PR-5 obs baseline: the same benches plus the
# flight-recorder and trace-propagation rows, re-recorded so wall-time
# gates compare against current hardware — BENCH_PR5.json stays in the
# tree as history) and the full micro-benchmark suite against
# BENCH_PR8.json, each with noise-aware thresholds (time must grow >50%
# AND >50ns to fail; any allocs/op increase fails — that gate protects
# the 0-alloc packed hot path). PERF_THRESHOLDS.json overrides the gate
# per benchmark: the bit-sliced lane benches carry an absolute
# 1280ns/op ceiling (20ns per monitor-tick x 64 lanes), the
# disabled-tracing and flight-recorder-armed benches a hard 0 allocs/op
# ceiling (enforced even when a baseline lacks the row), and the
# noisier I/O-bound benches get wider relative bands. Nonzero exit on
# regression. Every run appends one line to the versioned
# BENCH_HISTORY.jsonl, so the perf trajectory is tracked across PRs
# without diffing snapshots.
perfgate:
	$(GO) run ./cmd/cescbench -obs-json BENCH_gate.json -history BENCH_HISTORY.jsonl
	$(GO) run ./cmd/cescbench -compare -thresholds PERF_THRESHOLDS.json -history BENCH_HISTORY.jsonl BENCH_PR10.json BENCH_gate.json
	rm -f BENCH_gate.json
	$(GO) run ./cmd/cescbench -json BENCH_gate.json -history BENCH_HISTORY.jsonl
	$(GO) run ./cmd/cescbench -compare -thresholds PERF_THRESHOLDS.json -history BENCH_HISTORY.jsonl BENCH_PR8.json BENCH_gate.json
	rm -f BENCH_gate.json

# Lane smoke: the fast CI rider — runs only the bit-sliced lane and
# zero-copy batch-decode benches and diffs them against the checked-in
# BENCH_LANE.json under the same per-benchmark rules (the 1280ns/op lane
# ceiling and the 0-alloc decode gate).
lanebench:
	$(GO) run ./cmd/cescbench -lane-json BENCH_lane_gate.json -history BENCH_HISTORY.jsonl
	$(GO) run ./cmd/cescbench -compare -thresholds PERF_THRESHOLDS.json BENCH_LANE.json BENCH_lane_gate.json
	rm -f BENCH_lane_gate.json

# Overload soak: one node with a deliberately small memory budget takes
# thousands of sessions of Fig. 6 OCP traffic through the retrying
# client while the governor sheds and the janitor pages — zero lost
# verdicts, bounded session memory, clean Prometheus exposition.
# SOAK_SESSIONS scales the population (CI uses the default).
soaktest:
	$(GO) test -race -run TestOverloadSoak -v ./internal/server/

# Clustering suite: ring property tests, migration/promotion e2e, and
# churn stress under the race detector, then the process-level smoke
# (builds the real cescd binary, runs a 3-node ring, kill -9s the
# session owner, and requires the standby promotion to take over).
clustertest:
	$(GO) test -race ./internal/cluster/ ./internal/client/
	$(GO) test -run TestClusterSmoke -v ./cmd/cescd/

clean:
	$(GO) clean ./...
	rm -f BENCH_local.json
