GO ?= go

.PHONY: all build vet test race check bench bench-json clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: build + vet + tests under the race detector.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable micro-benchmark summary (name, ns/op, allocs/op).
bench-json:
	$(GO) run ./cmd/cescbench -json BENCH_local.json

clean:
	$(GO) clean ./...
	rm -f BENCH_local.json
