// Package repro reproduces "Automated Synthesis of Assertion Monitors
// using Visual Specifications" (Gadkari & Ramesh, DATE 2005): the CESC
// visual specification language, the monitor synthesis algorithm Tr with
// its scoreboard-based causality checks, multi-clock (GALS) monitor
// composition, and the OCP / AMBA AHB CLI case studies.
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the cescc compiler, the cescsim simulation
// runner and the cescviz renderer; examples/ holds runnable walkthroughs;
// bench_test.go in this directory regenerates every figure-level
// experiment (see EXPERIMENTS.md).
package repro
