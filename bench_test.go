// Benchmarks regenerating the paper's evaluation (see EXPERIMENTS.md).
// The paper has no numeric tables; its evaluation is the worked figures
// plus qualitative claims, so each figure gets (a) a synthesis bench and
// (b) a monitor-runtime bench over model traffic, and the claims get
// scaling, ablation and baseline benches.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/expr"
	"repro/internal/ltlmon"
	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/readproto"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/verif"
)

// --- E1: Figure 1, single-clock read protocol ---------------------------

func BenchmarkFig1SingleClockReadSynthesis(b *testing.B) {
	sc := readproto.SingleClockChart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Translate(sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1SingleClockReadRuntime(b *testing.B) {
	m := synth.MustTranslate(readproto.SingleClockChart(), nil)
	tr := trace.Concat(
		readproto.GoodSingleClockTrace(3),
		readproto.GoodSingleClockTrace(1),
		readproto.GoodSingleClockTrace(5),
	)
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(tr[i%len(tr)])
	}
	reportTicksPerSec(b)
}

// --- E2: Figure 2, multi-clock read protocol ----------------------------

func BenchmarkFig2MultiClockReadSynthesis(b *testing.B) {
	a := readproto.MultiClockChart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mclock.Synthesize(a, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2MultiClockReadRuntime(b *testing.B) {
	mm, err := mclock.Synthesize(readproto.MultiClockChart(), nil)
	if err != nil {
		b.Fatal(err)
	}
	g := readproto.GoodGlobalTrace(1)
	ex := mclock.NewExec(mm, monitor.ModeDetect)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.StepTick(g[i%len(g)]); err != nil {
			b.Fatal(err)
		}
	}
	reportTicksPerSec(b)
}

// --- E4: Figure 4, end-to-end flow --------------------------------------

func BenchmarkFlowEndToEnd(b *testing.B) {
	// Whole flow per iteration: synthesize from the chart, run 1000
	// cycles of model traffic through the monitor, collect the verdict.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := verif.RunOCPCampaign(ocp.Config{Gap: 2, Seed: int64(i)}, 1000, monitor.ModeDetect)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Accepts == 0 {
			b.Fatal("flow produced no detections")
		}
	}
}

// --- E5: Figure 5, generic causality SCESC ------------------------------

func fig5Chart() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "fig5", Clock: "clk", Instances: []string{"A", "B"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: "e1", Guard: expr.Pr("p1")}, {Event: "e2"},
			}},
			{},
			{Events: []chart.EventSpec{{Event: "e3", Guard: expr.Pr("p3")}}},
		},
		Arrows: []chart.Arrow{{From: "e1", To: "e3"}},
	}
}

func BenchmarkFig5Synthesis(b *testing.B) {
	sc := fig5Chart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Translate(sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: Figure 6, OCP simple read --------------------------------------

func BenchmarkFig6OCPSimpleReadSynthesis(b *testing.B) {
	sc := ocp.SimpleReadChart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Translate(sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6OCPSimpleReadRuntime(b *testing.B) {
	benchMonitorOverTrace(b,
		synth.MustTranslate(ocp.SimpleReadChart(), nil),
		ocp.NewModel(ocp.Config{Gap: 2, Seed: 1}).GenerateTrace(4096))
}

// --- E7: Figure 7, OCP pipelined burst read ------------------------------

func BenchmarkFig7OCPBurstReadSynthesis(b *testing.B) {
	sc := ocp.BurstReadChart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Translate(sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7OCPBurstReadRuntime(b *testing.B) {
	benchMonitorOverTrace(b,
		synth.MustTranslate(ocp.BurstReadChart(), nil),
		ocp.NewModel(ocp.Config{Gap: 2, Seed: 2, Burst: true}).GenerateTrace(4096))
}

// --- E8: Figure 8, AMBA AHB CLI transaction ------------------------------

func BenchmarkFig8AMBATransactionSynthesis(b *testing.B) {
	sc := amba.TransactionChart()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Translate(sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8AMBATransactionRuntime(b *testing.B) {
	benchMonitorOverTrace(b,
		synth.MustTranslate(amba.TransactionChart(), nil),
		amba.NewModel(amba.Config{Gap: 2, Seed: 3}).GenerateTrace(4096))
}

// --- E9: synthesis scaling and construction ablation ---------------------

// scalingPattern builds an n-tick chart over a pool of `width` events
// (grid line i requires event i mod width and the absence of its
// neighbour), keeping the support fixed while the pattern grows.
func scalingChart(n, width int) *chart.SCESC {
	sc := &chart.SCESC{ChartName: fmt.Sprintf("scale_%d_%d", n, width), Clock: "clk"}
	for i := 0; i < n; i++ {
		ev := fmt.Sprintf("s%d", i%width)
		next := fmt.Sprintf("s%d", (i+1)%width)
		sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{
			{Event: ev},
			{Event: next, Negated: true},
		}})
	}
	return sc
}

func BenchmarkSynthesisScalingLength(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("ticks=%d", n), func(b *testing.B) {
			sc := scalingChart(n, 6)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Translate(sc, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSynthesisScalingSupport(b *testing.B) {
	for _, w := range []int{2, 4, 8, 12, 16} {
		b.Run(fmt.Sprintf("support=%d", w), func(b *testing.B) {
			sc := scalingChart(12, w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Translate(sc, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConstruction compares the paper's literal
// per-valuation pseudocode (enumerate) against the equivalent symbolic
// construction (direct) on the same chart.
func BenchmarkAblationConstruction(b *testing.B) {
	sc := scalingChart(12, 8)
	for _, s := range []synth.Strategy{synth.StrategyDirect, synth.StrategyEnumerate} {
		b.Run(s.String(), func(b *testing.B) {
			opts := &synth.Options{Strategy: s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Translate(sc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHistory compares the two suffix_of history
// abstractions (DESIGN.md §3.1) at runtime on non-orthogonal traffic.
func BenchmarkAblationHistory(b *testing.B) {
	sc := ocp.BurstReadChart()
	tr := ocp.NewModel(ocp.Config{Gap: 0, Seed: 4, Burst: true}).GenerateTrace(4096)
	for _, h := range []synth.History{synth.HistImplication, synth.HistSatisfiable} {
		b.Run(h.String(), func(b *testing.B) {
			m, err := synth.Translate(sc, &synth.Options{History: h})
			if err != nil {
				b.Fatal(err)
			}
			benchMonitorOverTrace(b, m, tr)
		})
	}
}

// --- E10: baselines -------------------------------------------------------

// BenchmarkBaselineRuntime compares runtime throughput of the
// CESC-synthesized monitor against the hand-written checker and the
// temporal-logic (formula progression) detector on identical OCP simple
// read traffic.
func BenchmarkBaselineRuntime(b *testing.B) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 5}).GenerateTrace(4096)

	b.Run("cesc-synthesized", func(b *testing.B) {
		benchMonitorOverTrace(b, synth.MustTranslate(ocp.SimpleReadChart(), nil), tr)
	})
	b.Run("cesc-compiled", func(b *testing.B) {
		m := synth.MustTranslate(ocp.SimpleReadChart(), nil)
		c, err := monitor.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Step(tr[i%len(tr)])
		}
		reportTicksPerSec(b)
	})
	b.Run("manual-checker", func(b *testing.B) {
		var m verif.ManualOCPSimpleRead
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step(tr[i%len(tr)])
		}
		reportTicksPerSec(b)
	})
	b.Run("ltl-progression", func(b *testing.B) {
		p := synth.ExtractPattern(ocp.SimpleReadChart())
		d := ltlmon.NewDetector(ltlmon.SequenceFormula(p))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Step(tr[i%len(tr)])
		}
		reportTicksPerSec(b)
	})
}

// BenchmarkBaselineLTLBurst shows the progression baseline's cost growing
// with scenario length (the burst pattern spawns long-lived instances).
func BenchmarkBaselineLTLBurst(b *testing.B) {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 6, Burst: true}).GenerateTrace(4096)
	b.Run("cesc-synthesized", func(b *testing.B) {
		benchMonitorOverTrace(b, synth.MustTranslate(ocp.BurstReadChart(), nil), tr)
	})
	b.Run("ltl-progression", func(b *testing.B) {
		p := synth.ExtractPattern(ocp.BurstReadChart())
		d := ltlmon.NewDetector(ltlmon.SequenceFormula(p))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Step(tr[i%len(tr)])
		}
		reportTicksPerSec(b)
	})
}

// --- E11: structural composition ------------------------------------------

func BenchmarkComposedSynthesis(b *testing.B) {
	mkLeaf := func(name string, evs ...string) *chart.SCESC {
		sc := &chart.SCESC{ChartName: name, Clock: "clk"}
		for _, e := range evs {
			sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{{Event: e}}})
		}
		return sc
	}
	c := &chart.Seq{ChartName: "composite", Children: []chart.Chart{
		mkLeaf("head", "start"),
		&chart.Alt{ChartName: "mid", Children: []chart.Chart{
			mkLeaf("fast", "hit"),
			mkLeaf("slow", "miss", "refill"),
		}},
		&chart.Loop{ChartName: "beats", Body: mkLeaf("beat", "data"), Min: 1, Max: 4},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Synthesize(c, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBurstLengthSweep scales the Figure 7 case study: synthesis
// cost and monitor runtime as the burst length grows.
func BenchmarkBurstLengthSweep(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		c, err := ocp.BurstReadChartN(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("synthesis/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Translate(c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("runtime/n=%d", n), func(b *testing.B) {
			m, err := synth.Translate(c, nil)
			if err != nil {
				b.Fatal(err)
			}
			tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: int64(n), Burst: true, BurstLen: n}).GenerateTrace(4096)
			benchMonitorOverTrace(b, m, tr)
		})
	}
}

// BenchmarkHandshakeSynthesis measures the loop-composed OCP write
// handshake (subset construction) across wait-state bounds.
func BenchmarkHandshakeSynthesis(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("maxWait=%d", w), func(b *testing.B) {
			c := ocp.HandshakeChart(w)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Synthesize(c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMinimization measures partition refinement on a composed
// monitor.
func BenchmarkMinimization(b *testing.B) {
	c := ocp.HandshakeChart(3)
	m, err := synth.Synthesize(c, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Minimize(m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: soak campaign with fault injection -------------------------------

func BenchmarkSoakCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := verif.RunAMBACampaign(amba.Config{
			Gap: 1, Seed: int64(i), FaultRate: 0.1,
		}, 5000, monitor.ModeAssert)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Transactions == 0 {
			b.Fatal("no traffic")
		}
	}
}

// --- infrastructure micro-benches ------------------------------------------

func BenchmarkScoreboardOps(b *testing.B) {
	sb := monitor.NewScoreboard()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Add(int64(i), "e")
		sb.Chk("e")
		sb.Del("e")
	}
}

func BenchmarkGuardEvaluation(b *testing.B) {
	g := expr.And(expr.Ev("MCmd_rd"), expr.Ev("Addr"), expr.Ev("SCmd_accept"), expr.Chk("MCmd_rd"))
	s := event.NewState().WithEvents("MCmd_rd", "Addr", "SCmd_accept")
	sb := monitor.NewScoreboard()
	sb.Add(0, "MCmd_rd")
	ctx := benchCtx{s: s, sb: sb}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !g.Eval(ctx) {
			b.Fatal("guard false")
		}
	}
}

type benchCtx struct {
	s  event.State
	sb *monitor.Scoreboard
}

func (c benchCtx) Event(n string) bool  { return c.s.Event(n) }
func (c benchCtx) Prop(n string) bool   { return c.s.Prop(n) }
func (c benchCtx) ChkEvt(n string) bool { return c.sb.Chk(n) }

// --- helpers ---------------------------------------------------------------

func benchMonitorOverTrace(b *testing.B, m *monitor.Monitor, tr trace.Trace) {
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(tr[i%len(tr)])
	}
	reportTicksPerSec(b)
}

func reportTicksPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ticks/s")
}
