// Command cescviz renders CESC charts from a .cesc file as ASCII art or
// SVG — the visual side of the specification language.
//
// Usage:
//
//	cescviz [-format ascii|svg] [-chart NAME] [-o FILE] spec.cesc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/chart"
	"repro/internal/parser"
	"repro/internal/render"
)

func main() {
	format := flag.String("format", "ascii", "output format: ascii or svg")
	chartName := flag.String("chart", "", "render only the named chart")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cescviz [flags] spec.cesc")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	var sb strings.Builder
	matched := false
	for _, n := range f.Charts {
		if *chartName != "" && n.Name != *chartName {
			continue
		}
		matched = true
		switch *format {
		case "ascii":
			sb.WriteString(render.ASCIIChart(n.Chart))
			sb.WriteByte('\n')
		case "svg":
			sc, ok := n.Chart.(*chart.SCESC)
			if !ok {
				// Render each SCESC leaf of a structured chart.
				for _, leafChart := range chart.Leaves(n.Chart) {
					sb.WriteString(render.SVG(leafChart))
				}
				continue
			}
			sb.WriteString(render.SVG(sc))
		default:
			fatal(fmt.Errorf("cescviz: unknown format %q", *format))
		}
	}
	if !matched {
		fatal(fmt.Errorf("cescviz: chart %q not found", *chartName))
	}
	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
