// Command wave2cesc formalizes an ASCII timing diagram as a CESC chart:
// the informal waveform the protocol documents draw becomes a
// synthesizable .cesc specification.
//
//	wave2cesc [-name N] [-strict] [-props a,b] waveform.txt > spec.cesc
//
// The waveform format is rows of `signal : bits` with an optional clk
// row selecting rising-edge sampling (see internal/wavein). -strict adds
// absence markers for low signals; -props lists signals to treat as
// propositions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/parser"
	"repro/internal/wavein"
)

func main() {
	name := flag.String("name", "Waveform", "chart name")
	strict := flag.Bool("strict", false, "require absence of low signals")
	props := flag.String("props", "", "comma-separated proposition signals")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: wave2cesc [flags] waveform.txt")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	w, err := wavein.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	propSet := map[string]bool{}
	for _, p := range strings.Split(*props, ",") {
		if p = strings.TrimSpace(p); p != "" {
			propSet[p] = true
		}
	}
	sc, err := w.ToChart(wavein.ChartOptions{
		Name:           *name,
		Props:          propSet,
		RequireAbsence: *strict,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(parser.Print(*name, sc))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
