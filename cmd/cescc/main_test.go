package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

func TestParseOptions(t *testing.T) {
	opts, err := parseOptions("direct", "implication")
	if err != nil || opts.Strategy != synth.StrategyDirect || opts.History != synth.HistImplication {
		t.Errorf("defaults wrong: %+v, %v", opts, err)
	}
	opts, err = parseOptions("enumerate", "satisfiable")
	if err != nil || opts.Strategy != synth.StrategyEnumerate || opts.History != synth.HistSatisfiable {
		t.Errorf("alternates wrong: %+v, %v", opts, err)
	}
	if _, err := parseOptions("zap", "implication"); err == nil {
		t.Error("bad strategy accepted")
	}
	if _, err := parseOptions("direct", "zap"); err == nil {
		t.Error("bad history accepted")
	}
}

func TestExportName(t *testing.T) {
	cases := map[string]string{
		"ocp_simple_read": "Ocpsimpleread",
		"":                "Monitor",
		"___":             "Monitor",
		"x":               "X",
	}
	for in, want := range cases {
		if got := exportName(in); got != want {
			t.Errorf("exportName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmitArtifactFormats(t *testing.T) {
	arts, err := core.CompileSource(`
cesc T { scesc on clk { tick { a; } tick { b; } } }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, emit := range []string{"table", "json", "dot", "go", "sv", "psl", "cesc"} {
		var sb strings.Builder
		if err := emitArtifact(&sb, arts[0], emit, "pkg", "mod"); err != nil {
			t.Errorf("emit %s: %v", emit, err)
		}
		if sb.Len() == 0 {
			t.Errorf("emit %s produced nothing", emit)
		}
	}
	var sb strings.Builder
	if err := emitArtifact(&sb, arts[0], "nope", "pkg", "mod"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestEmitMultiClockArtifact(t *testing.T) {
	arts, err := core.CompileSource(`
cesc M {
  async {
    scesc L on c1 { tick { x; } }
    scesc R on c2 { tick { y; } }
  }
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, emit := range []string{"table", "dot", "sv", "cesc"} {
		var sb strings.Builder
		if err := emitArtifact(&sb, arts[0], emit, "pkg", ""); err != nil {
			t.Errorf("multi emit %s: %v", emit, err)
		}
	}
	var sb strings.Builder
	if err := emitArtifact(&sb, arts[0], "psl", "pkg", ""); err == nil {
		t.Error("PSL for multi-clock chart should fail")
	}
}
