// Command cescc is the CESC compiler: it reads a .cesc specification,
// synthesizes the assertion monitor(s), and emits them in the requested
// format.
//
// Usage:
//
//	cescc [flags] spec.cesc
//
// Flags:
//
//	-emit table|dot|go|sv      output format (default table)
//	-chart NAME                compile only the named chart
//	-strategy direct|enumerate transition-function construction
//	-history implication|satisfiable   suffix_of history abstraction
//	-pkg NAME                  package name for -emit go
//	-module NAME               module name for -emit sv
//	-o FILE                    write output to FILE instead of stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/synth"
)

func main() {
	emit := flag.String("emit", "table", "output format: table, json, dot, go, sv, psl, cesc (formatter)")
	chartName := flag.String("chart", "", "compile only the named chart")
	strategy := flag.String("strategy", "direct", "construction strategy: direct or enumerate")
	history := flag.String("history", "implication", "history abstraction: implication or satisfiable")
	pkg := flag.String("pkg", "checker", "package name for -emit go")
	module := flag.String("module", "", "module name for -emit sv")
	out := flag.String("o", "", "output file (default stdout)")
	analyze := flag.Bool("analyze", false, "run the specification-consistency analysis and exit")
	minimize := flag.Bool("minimize", false, "minimize composed (action-free) monitors before emitting")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cescc [flags] spec.cesc")
		flag.Usage()
		os.Exit(2)
	}
	opts, err := parseOptions(*strategy, *history)
	if err != nil {
		fatal(err)
	}
	if *analyze {
		runAnalysis(flag.Arg(0), *chartName)
		return
	}
	arts, err := core.CompileFile(flag.Arg(0), opts)
	if err != nil {
		fatal(err)
	}
	var sb strings.Builder
	matched := false
	for _, a := range arts {
		if *chartName != "" && a.Name != *chartName {
			continue
		}
		matched = true
		if *minimize && a.Single != nil {
			min, err := synth.Minimize(a.Single)
			if err != nil {
				fatal(err)
			}
			a.Single = min
		}
		if err := emitArtifact(&sb, a, *emit, *pkg, *module); err != nil {
			fatal(err)
		}
	}
	if !matched {
		fatal(fmt.Errorf("cescc: chart %q not found in %s", *chartName, flag.Arg(0)))
	}
	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		fatal(err)
	}
}

func parseOptions(strategy, history string) (*synth.Options, error) {
	opts := &synth.Options{NameGuards: true}
	switch strategy {
	case "direct":
		opts.Strategy = synth.StrategyDirect
	case "enumerate":
		opts.Strategy = synth.StrategyEnumerate
	default:
		return nil, fmt.Errorf("cescc: unknown strategy %q", strategy)
	}
	switch history {
	case "implication":
		opts.History = synth.HistImplication
	case "satisfiable":
		opts.History = synth.HistSatisfiable
	default:
		return nil, fmt.Errorf("cescc: unknown history abstraction %q", history)
	}
	return opts, nil
}

func emitArtifact(sb *strings.Builder, a *core.Artifact, emit, pkg, module string) error {
	if emit == "cesc" {
		fmt.Fprint(sb, parser.Print(a.Name, a.Chart))
		return nil
	}
	if emit == "psl" {
		out, err := codegen.PSL(a.Name, a.Chart)
		if err != nil {
			return err
		}
		fmt.Fprint(sb, out)
		return nil
	}
	if a.IsMultiClock() {
		switch emit {
		case "table":
			fmt.Fprint(sb, a.Multi.String())
			return nil
		case "dot", "go", "sv", "json":
			for i, lm := range a.Multi.Locals {
				fmt.Fprintf(sb, "// local monitor for clock domain %s\n", a.Multi.Domains[i])
				if err := emitSingle(sb, a, lm.Name, emit, pkg, module); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("cescc: unknown format %q", emit)
		}
	}
	return emitSingle(sb, a, a.Name, emit, pkg, module)
}

func emitSingle(sb *strings.Builder, a *core.Artifact, name, emit, pkg, module string) error {
	m := a.Single
	if a.IsMultiClock() {
		for i, lm := range a.Multi.Locals {
			if lm.Name == name {
				m = a.Multi.Locals[i]
				break
			}
		}
	}
	if m == nil {
		return fmt.Errorf("cescc: no monitor named %q", name)
	}
	switch emit {
	case "table":
		fmt.Fprint(sb, m.String())
	case "json":
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		sb.Write(data)
		sb.WriteByte('\n')
	case "dot":
		fmt.Fprint(sb, codegen.DOT(m))
	case "go":
		fmt.Fprint(sb, codegen.GoSource(m, pkg, exportName(name)))
	case "sv":
		mod := module
		if mod == "" {
			mod = name + "_monitor"
		}
		fmt.Fprint(sb, codegen.SystemVerilog(m, mod))
	default:
		return fmt.Errorf("cescc: unknown format %q", emit)
	}
	return nil
}

func exportName(name string) string {
	if name == "" {
		return "Monitor"
	}
	out := strings.Map(func(r rune) rune {
		if r == '_' || r == '-' || r == '.' {
			return -1
		}
		return r
	}, name)
	if out == "" {
		return "Monitor"
	}
	return strings.ToUpper(out[:1]) + out[1:]
}

// runAnalysis parses the file and prints consistency findings; exit code
// 1 when any error-severity finding (or a parse failure) is present.
func runAnalysis(path, only string) {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	f, err := parser.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	hadError := false
	for _, n := range f.Charts {
		if only != "" && n.Name != only {
			continue
		}
		findings, err := synth.Analyze(n.Chart)
		if err != nil {
			fatal(err)
		}
		if len(findings) == 0 {
			fmt.Printf("%s: no findings\n", n.Name)
			continue
		}
		for _, fd := range findings {
			fmt.Printf("%s: %s\n", n.Name, fd)
			if fd.Severity == synth.Error {
				hadError = true
			}
		}
	}
	if hadError {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
