package main

// Process-level cluster smoke test: build the real binary, run a
// three-node ring as separate OS processes, stream ticks through the
// ring-aware router, SIGKILL the session owner, and require the
// standby promotion to take over within the failure-detection window.
// This is the closest test to production: real sockets, real processes,
// real kill -9.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/ocp"
	"repro/internal/server"
	"repro/internal/trace"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, l)
		ports = append(ports, l.Addr().(*net.TCPAddr).Port)
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports
}

func buildCescd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cescd")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cescd: %v\n%s", err, out)
	}
	return bin
}

func waitHealthy(t *testing.T, base string, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node at %s never became healthy: %v", base, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func smokeStates(n int) []server.StateJSON {
	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 5, FaultRate: 0.1}).GenerateTrace(n)
	return tracesToStates(tr)
}

func tracesToStates(tr trace.Trace) []server.StateJSON {
	out := make([]server.StateJSON, len(tr))
	for i, s := range tr {
		st := server.StateJSON{}
		for e, v := range s.Events {
			if v {
				st.Events = append(st.Events, e)
			}
		}
		for p, v := range s.Props {
			if v {
				if st.Props == nil {
					st.Props = make(map[string]bool)
				}
				st.Props[p] = true
			}
		}
		out[i] = st
	}
	return out
}

func TestClusterSmokeKillMinusNine(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level smoke test")
	}
	bin := buildCescd(t)
	ports := freePorts(t, 3)
	names := []string{"n1", "n2", "n3"}
	var peerList []string
	urls := make(map[string]string)
	for i, name := range names {
		urls[name] = fmt.Sprintf("http://127.0.0.1:%d", ports[i])
		peerList = append(peerList, name+"="+urls[name])
	}
	peers := strings.Join(peerList, ",")

	procs := make(map[string]*exec.Cmd)
	for i, name := range names {
		dir := t.TempDir()
		cmd := exec.Command(bin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-cluster-name", name,
			"-advertise", urls[name],
			"-peers", peers,
			"-refresh-every", "200ms",
			"-fail-after", "5",
			"-replicate-every", "100ms",
			"-wal-dir", filepath.Join(dir, "wal"),
			"-specs", filepath.Join("..", "..", "specs"),
			"-snapshot-every", "4",
			"-trace-depth", "256",
		)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		procs[name] = cmd
		name := name
		t.Cleanup(func() {
			if p := procs[name]; p != nil && p.Process != nil {
				_ = p.Process.Kill()
				_, _ = p.Process.Wait()
			}
		})
	}
	for _, name := range names {
		waitHealthy(t, urls[name], 10*time.Second)
	}

	router, err := client.NewRouter(client.RouterOptions{
		Seeds: []string{urls["n1"], urls["n2"], urls["n3"]},
		Client: client.Options{
			RequestTimeout: 5 * time.Second,
			MaxAttempts:    5,
			BackoffBase:    50 * time.Millisecond,
			BackoffCap:     time.Second,
		},
		MaxHops: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	if err := router.Refresh(ctx); err != nil {
		t.Fatalf("ring refresh: %v", err)
	}
	if router.Ring().Len() != 3 {
		t.Fatalf("ring has %d members, want 3", router.Ring().Len())
	}

	// Every batch travels under one pinned trace id, so after the kill -9
	// the cluster-merged timeline must tell the whole story: ingest on the
	// owner, the proxy hop through a non-owner, and the standby promotion
	// replay attributed to the same trace.
	const traceID = "smoke-kill-nine-trace"
	tctx := client.WithTraceID(ctx, traceID)

	sess, err := router.CreateSession(tctx, "assert", "OcpSimpleRead")
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	states := smokeStates(200)
	for at := 0; at < 100; at += 20 {
		if _, err := sess.SendTicks(tctx, states[at:at+20], true); err != nil {
			t.Fatalf("SendTicks at %d: %v", at, err)
		}
	}

	// Locate the owner process via the ring, let replication ship the
	// tail, then kill -9 the owner.
	owner, ok := router.Ring().Owner(sess.ID)
	if !ok {
		t.Fatalf("no ring owner for %s", sess.ID)
	}
	var flush struct {
		Lag int64 `json:"lag_bytes"`
	}
	flushDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(urls[owner.Name]+"/cluster/flush", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("flush on %s: %v", owner.Name, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&flush)
		resp.Body.Close()
		if err == nil && flush.Lag == 0 {
			break
		}
		if time.Now().After(flushDeadline) {
			t.Fatalf("replication lag never reached 0 (last %d)", flush.Lag)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := procs[owner.Name].Process.Kill(); err != nil {
		t.Fatalf("killing %s: %v", owner.Name, err)
	}
	_, _ = procs[owner.Name].Process.Wait()
	procs[owner.Name] = nil
	t.Logf("killed owner %s", owner.Name)

	// The survivors' failure detector (5 × 200ms probes) removes the
	// dead node; the standby holder promotes. Keep streaming — the
	// router re-routes as soon as the ring shrinks. Allow generous
	// retries while detection converges, bounded at 15s.
	promoted := false
	promoteDeadline := time.Now().Add(15 * time.Second)
	for !promoted {
		if time.Now().After(promoteDeadline) {
			t.Fatalf("no survivor took over session %s within 15s", sess.ID)
		}
		_ = router.Refresh(ctx)
		if info, err := sess.Info(ctx); err == nil && info.Steps >= 100 {
			promoted = true
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	for at := 100; at < 200; at += 20 {
		if _, err := sess.SendTicks(tctx, states[at:at+20], true); err != nil {
			t.Fatalf("post-failover SendTicks at %d: %v", at, err)
		}
	}
	info, err := sess.Info(ctx)
	if err != nil {
		t.Fatalf("Info after failover: %v", err)
	}
	if info.Steps != 200 {
		t.Fatalf("steps after kill -9 failover = %d, want 200", info.Steps)
	}

	// The promoted node should report the takeover on /cluster/status.
	sawPromotion := false
	for _, name := range names {
		if name == owner.Name {
			continue
		}
		resp, err := http.Get(urls[name] + "/cluster/status")
		if err != nil {
			continue
		}
		var st cluster.StatusJSON
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.Promotions > 0 {
			sawPromotion = true
		}
	}
	if !sawPromotion {
		t.Fatalf("no survivor reported a standby promotion")
	}

	// Force one transparent proxy hop under the trace: a traced GET
	// through whichever survivor does not hold the session records a
	// proxy span on its way to the holder.
	for _, name := range names {
		if name == owner.Name {
			continue
		}
		req, _ := http.NewRequest(http.MethodGet, urls[name]+"/sessions/"+sess.ID, nil)
		req.Header.Set("X-Cesc-Trace", traceID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("traced GET via %s: %v", name, err)
		}
		resp.Body.Close()
	}

	// One trace id, one merged timeline: spans from at least two of the
	// surviving processes, in causal (HLC) order, including the standby
	// promotion replay attributed to the originating trace.
	var merged cluster.ClusterTraceJSON
	for _, name := range names {
		if name == owner.Name {
			continue
		}
		resp, err := http.Get(urls[name] + "/cluster/trace?trace=" + traceID)
		if err != nil {
			t.Fatalf("GET /cluster/trace via %s: %v", name, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&merged)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding /cluster/trace via %s: %v", name, err)
		}
		break
	}
	spanNodes := map[string]bool{}
	var sawPromotionSpan, sawProxySpan bool
	for i, sp := range merged.Spans {
		if sp.Trace != traceID {
			t.Fatalf("span %d carries trace %q, want %q", i, sp.Trace, traceID)
		}
		if i > 0 && sp.HLC < merged.Spans[i-1].HLC {
			t.Fatalf("merged timeline not causally ordered at span %d", i)
		}
		if sp.Node != "" {
			spanNodes[sp.Node] = true
		}
		if sp.Stage == obs.StageWALReplay && sp.Kind == "promotion" {
			sawPromotionSpan = true
		}
		if sp.Kind == "proxy" {
			sawProxySpan = true
		}
	}
	if len(spanNodes) < 2 {
		t.Fatalf("merged timeline names %d nodes, want >= 2 (nodes %+v)", len(spanNodes), merged.Nodes)
	}
	if !sawPromotionSpan {
		t.Fatalf("merged timeline missing the promotion replay span:\n%+v", merged.Spans)
	}
	if !sawProxySpan {
		t.Fatalf("merged timeline missing a proxy hop span:\n%+v", merged.Spans)
	}
}
