// Command cescd is the monitor-as-a-service daemon: it loads .cesc
// specifications, synthesizes their assertion monitors, and serves an
// HTTP API for streaming valuation ticks against them — the paper's
// Fig. 4 verification flow turned into a long-running service for live
// trace streams.
//
// Usage:
//
//	cescd [flags]
//
// Flags:
//
//	-addr :8080          listen address
//	-specs PATH[,PATH]   .cesc files or directories to load at startup
//	-shards N            worker goroutines (sessions pinned by ID hash)
//	-queue N             per-shard queue depth in batches (full => 429)
//	-idle-ttl DUR        evict sessions idle longer than this (0 = never)
//	-max-batch N         max ticks accepted per request
//	-tick-delay DUR      artificial per-tick delay (load testing only)
//	-wal-dir PATH        journal sessions here and recover them at startup
//	-fsync MODE          WAL durability: always | interval | never
//	-fsync-every DUR     sync period for -fsync interval
//	-snapshot-every N    checkpoint monitor state every N journaled batches
//	                     (negative disables snapshots)
//	-trace-depth N       per-shard tick-trace ring depth (0 disables tracing)
//	-slow-tick DUR       warn when a batch's per-tick step time exceeds this
//	-debug-addr ADDR     serve net/http/pprof and expvar on a second listener
//	-flightrec-window DUR  flight recorder lookback window (default 30s)
//	-flightrec-dir PATH    write black-box dumps here on trips and SIGQUIT
//	-node-name NAME        node name stamped on spans (standalone mode;
//	                       cluster mode uses -cluster-name)
//
// Overload, quotas, and paging (see the README section of that name):
//
//	-mem-budget SIZE        session memory budget (e.g. 256m, 2g); over it,
//	                        coldest sessions page out to the WAL (0 = unlimited)
//	-journal-budget SIZE    journal disk budget; over it, cold sessions'
//	                        journals are pruned oldest-first (0 = unlimited)
//	-tenant-header NAME     request header carrying the tenant key
//	                        (default X-Cesc-Tenant; session-ID prefix otherwise)
//	-quota-tick-rate N      per-tenant sustained ticks/sec (token bucket)
//	-quota-tick-burst N     per-tenant tick burst allowance (default = rate)
//	-quota-max-sessions N   per-tenant open session cap (hot + cold)
//	-quota-hot-sessions N   per-tenant hot session cap (excess pages out)
//	-governor-latency DUR   per-tick step latency treated as saturation
//	-cold-start             register recovered sessions cold, revive on demand
//
// Clustering (see the README "Clustering" section):
//
//	-cluster-name NAME    enable cluster mode under this member name
//	-advertise URL        base URL peers and clients reach this node at
//	-peers NAME=URL,...   static membership (self included automatically)
//	-join URL[,URL]       join an existing cluster via any listed node
//	-vnodes N             virtual nodes per member on the hash ring
//	-refresh-every DUR    ring refresh / failure probe period
//	-fail-after N         failed probes before declaring a peer dead
//	-replicate-every DUR  WAL standby shipping period
//	-standby-dir PATH     standby journal root (default <wal-dir>.standby)
//	-drain                on SIGTERM, migrate sessions away before exit
//
// Endpoints: GET /healthz (liveness), GET /readyz (readiness),
// GET /metrics (Prometheus text; JSON with Accept: application/json),
// GET|POST /specs, POST|GET /sessions, GET|DELETE /sessions/{id},
// POST /sessions/{id}/ticks (NDJSON; ?wait=1), POST /sessions/{id}/vcd
// (?props=a,b), GET /sessions/{id}/verdicts, GET /sessions/{id}/diagnostics,
// GET /debug/trace, GET /debug/flightrec; in cluster mode also
// GET /cluster/ring, GET /cluster/status, GET /cluster/trace (fleet-merged
// timeline for one trace id), GET /cluster/metrics (node-labeled federated
// exposition), POST /cluster/{join,leave,adopt,migrate,replicate,drain,
// flush}.
// See the README "Running cescd" and "Observability" sections for the
// tick format and curl examples.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	specs := flag.String("specs", "specs", "comma-separated .cesc files or directories to load")
	shards := flag.Int("shards", 4, "worker goroutines")
	queue := flag.Int("queue", 64, "per-shard queue depth (batches)")
	idleTTL := flag.Duration("idle-ttl", 30*time.Minute, "evict sessions idle longer than this (0 disables)")
	maxBatch := flag.Int("max-batch", 65536, "max ticks per ingest request")
	tickDelay := flag.Duration("tick-delay", 0, "artificial per-tick delay (load testing only)")
	walDir := flag.String("wal-dir", "", "session journal directory (empty disables crash recovery)")
	fsync := flag.String("fsync", "interval", "WAL durability: always | interval | never")
	fsyncEvery := flag.Duration("fsync-every", 0, "sync period for -fsync interval (0 = wal default)")
	snapEvery := flag.Int("snapshot-every", 0, "checkpoint every N journaled batches (0 = default, negative disables)")
	traceDepth := flag.Int("trace-depth", 0, "per-shard tick-trace ring depth (0 disables tracing)")
	slowTick := flag.Duration("slow-tick", 0, "warn when a batch's per-tick step time exceeds this (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty disables)")
	flightWindow := flag.Duration("flightrec-window", 30*time.Second, "flight recorder lookback window")
	flightDir := flag.String("flightrec-dir", "", "write flight-recorder dumps here on trips and SIGQUIT (empty disables dumps)")
	nodeName := flag.String("node-name", "", "node name stamped on trace spans (cluster mode uses -cluster-name)")

	memBudget := flag.String("mem-budget", "", "session memory budget, e.g. 256m or 2g (empty = unlimited; needs -wal-dir to page instead of delete)")
	journalBudget := flag.String("journal-budget", "", "journal disk budget, e.g. 10g (empty = unlimited; prunes cold sessions' journals oldest-first)")
	tenantHeader := flag.String("tenant-header", "", "request header carrying the tenant key (default X-Cesc-Tenant)")
	quotaTickRate := flag.Float64("quota-tick-rate", 0, "per-tenant sustained ticks/sec ingest quota (0 = unlimited)")
	quotaTickBurst := flag.Float64("quota-tick-burst", 0, "per-tenant tick burst allowance (0 = same as rate)")
	quotaMaxSessions := flag.Int("quota-max-sessions", 0, "per-tenant open session cap, hot + cold (0 = unlimited)")
	quotaHotSessions := flag.Int("quota-hot-sessions", 0, "per-tenant hot session cap; excess pages out coldest-first (0 = unlimited)")
	governorLatency := flag.Duration("governor-latency", 0, "per-tick step latency the governor treats as saturation (0 = default 100ms)")
	coldStart := flag.Bool("cold-start", false, "register recovered WAL sessions cold (revive on first touch) instead of replaying all at boot")

	clusterName := flag.String("cluster-name", "", "enable cluster mode under this member name")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (cluster mode)")
	peersFlag := flag.String("peers", "", "static membership as name=url[,name=url...] (cluster mode)")
	joinFlag := flag.String("join", "", "join an existing cluster via these comma-separated node URLs")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per ring member (0 = default)")
	refreshEvery := flag.Duration("refresh-every", 2*time.Second, "ring refresh / failure probe period (cluster mode)")
	failAfter := flag.Int("fail-after", 3, "consecutive failed probes before declaring a peer dead")
	replicateEvery := flag.Duration("replicate-every", 250*time.Millisecond, "WAL standby shipping period (cluster mode)")
	standbyDir := flag.String("standby-dir", "", "standby journal root (default <wal-dir>.standby)")
	drainOnExit := flag.Bool("drain", false, "on SIGTERM, migrate sessions to peers before exiting")
	flag.Parse()

	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatalf("cescd: %v", err)
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		log.Fatalf("cescd: -mem-budget: %v", err)
	}
	jbudget, err := parseBytes(*journalBudget)
	if err != nil {
		log.Fatalf("cescd: -journal-budget: %v", err)
	}
	srvCfg := server.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		MaxBatchTicks: *maxBatch,
		IdleTTL:       *idleTTL,
		TickDelay:     *tickDelay,
		WALDir:        *walDir,
		Fsync:         policy,
		FsyncEvery:    *fsyncEvery,
		SnapshotEvery: *snapEvery,
		TraceDepth:    *traceDepth,
		SlowTick:      *slowTick,
		NodeName:      *nodeName,
		FlightWindow:  *flightWindow,
		FlightDir:     *flightDir,

		MemBudget:        budget,
		JournalBudget:    jbudget,
		TenantHeader:     *tenantHeader,
		QuotaTickRate:    *quotaTickRate,
		QuotaTickBurst:   *quotaTickBurst,
		QuotaMaxSessions: *quotaMaxSessions,
		QuotaHotSessions: *quotaHotSessions,
		GovernorLatency:  *governorLatency,
		ColdStart:        *coldStart,
	}

	// Cluster mode wraps the server in ring routing + replication; the
	// standalone path keeps the bare server. Either way there is one
	// *server.Server to load specs into and one handler to serve.
	var (
		srv     *server.Server
		node    *cluster.Node
		handler http.Handler
	)
	if *clusterName != "" {
		if *advertise == "" {
			log.Fatalf("cescd: -cluster-name requires -advertise")
		}
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			log.Fatalf("cescd: %v", err)
		}
		sbDir := *standbyDir
		if sbDir == "" && *walDir != "" {
			sbDir = strings.TrimRight(*walDir, "/") + ".standby"
		}
		var joins []string
		for _, u := range strings.Split(*joinFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				joins = append(joins, u)
			}
		}
		node, err = cluster.New(cluster.Config{
			Name:           *clusterName,
			AdvertiseURL:   *advertise,
			Peers:          peers,
			JoinURLs:       joins,
			VNodes:         *vnodes,
			RefreshEvery:   *refreshEvery,
			FailAfter:      *failAfter,
			ReplicateEvery: *replicateEvery,
			StandbyDir:     sbDir,
			Server:         srvCfg,
		})
		if err != nil {
			log.Fatalf("cescd: %v", err)
		}
		srv, handler = node.Server(), node.Handler()
		log.Printf("cescd: cluster member %s at %s (ring epoch %d, %d member(s), standby %s)",
			*clusterName, *advertise, node.Ring().Epoch(), node.Ring().Len(), sbDir)
	} else {
		srv, err = server.New(srvCfg)
		if err != nil {
			log.Fatalf("cescd: %v", err)
		}
		handler = srv.Handler()
	}
	if *walDir != "" {
		m := srv.Metrics()
		log.Printf("cescd: journaling to %s (fsync %s), recovered %d session(s), replayed %d batch(es)",
			*walDir, *fsync, m.SessionsRecovered, m.BatchesReplayed)
	}
	loaded, err := loadSpecs(srv, *specs)
	if err != nil {
		log.Fatalf("cescd: %v", err)
	}
	for _, n := range loaded {
		log.Printf("cescd: loaded spec %s", n)
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	// SIGQUIT dumps the black box on demand — the operator's "what just
	// happened" signal for a daemon that is misbehaving but not dead.
	go func() {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		for range quit {
			path, err := srv.FlightRecorder().Dump("sigquit")
			switch {
			case err != nil:
				log.Printf("cescd: flight-recorder dump: %v", err)
			case path == "":
				log.Printf("cescd: flight recorder has no dump dir (-flightrec-dir)")
			default:
				log.Printf("cescd: flight recorder dumped to %s", path)
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		if node != nil && *drainOnExit {
			log.Printf("cescd: draining out of the ring")
			moved := node.Drain()
			log.Printf("cescd: migrated %d session(s) to peers", moved)
		}
		log.Printf("cescd: shutting down, draining in-flight ticks")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("cescd: http shutdown: %v", err)
		}
		if node != nil {
			node.Close()
		} else {
			srv.Close()
		}
	}()
	log.Printf("cescd: listening on %s (%d shards, queue %d, %d specs)",
		*addr, *shards, *queue, len(loaded))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("cescd: %v", err)
	}
	<-done
	log.Printf("cescd: drained, bye")
}

// parseBytes parses a byte-size flag value: a bare number or one with a
// k / m / g suffix (binary multiples). Empty means 0 (unlimited).
func parseBytes(v string) (int64, error) {
	v = strings.TrimSpace(strings.ToLower(v))
	if v == "" {
		return 0, nil
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(v, "g"):
		mult, v = 1<<30, strings.TrimSuffix(v, "g")
	case strings.HasSuffix(v, "m"):
		mult, v = 1<<20, strings.TrimSuffix(v, "m")
	case strings.HasSuffix(v, "k"):
		mult, v = 1<<10, strings.TrimSuffix(v, "k")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 268435456, 256m, 2g)", v)
	}
	return n * mult, nil
}

// parsePeers parses the -peers flag: name=url pairs, comma-separated.
func parsePeers(list string) ([]cluster.Member, error) {
	var peers []cluster.Member
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		name, url, ok := strings.Cut(p, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=url)", p)
		}
		peers = append(peers, cluster.Member{Name: name, URL: url})
	}
	return peers, nil
}

// serveDebug exposes the Go runtime's profiling surface on a separate
// listener, so production deployments can keep pprof off the public API
// port (bind it to localhost or a management network).
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	log.Printf("cescd: debug listener (pprof, expvar) on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("cescd: debug listener: %v", err)
	}
}

// loadSpecs loads every .cesc file named by the comma-separated list of
// files and directories. Multi-clock charts load but cannot back
// sessions; files that fail to compile abort startup.
func loadSpecs(srv *server.Server, list string) ([]string, error) {
	var all []string
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		var files []string
		if info.IsDir() {
			files, err = filepath.Glob(filepath.Join(p, "*.cesc"))
			if err != nil {
				return nil, err
			}
		} else {
			files = []string{p}
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				return nil, err
			}
			names, err := srv.LoadSpecSource(string(src))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", f, err)
			}
			all = append(all, names...)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no specs loaded from %q", list)
	}
	return all, nil
}
