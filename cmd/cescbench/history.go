package main

// Versioned benchmark history: with -history PATH, every -json,
// -obs-json, and -compare run appends one self-describing JSON line to
// PATH (conventionally BENCH_HISTORY.jsonl at the repo root, committed
// alongside the BENCH_*.json snapshots). The file is append-only, so
// the perf trajectory across PRs is greppable and plottable without
// reconstructing it from git history.

import (
	"encoding/json"
	"os"
	"time"
)

// historySchema versions the line format itself.
const historySchema = "cescbench/history/v1"

// historyEntry is one line of the history file.
type historyEntry struct {
	Schema string `json:"schema"`
	Time   string `json:"time"`
	// Kind is the run flavor: "json", "obs-json", or "compare".
	Kind string `json:"kind"`
	// BenchSchema is the schema of the summary involved (e.g.
	// "cescbench/v1"), so mixed histories stay separable.
	BenchSchema string `json:"bench_schema,omitempty"`
	// Files are the summary paths involved: the written file for
	// json/obs-json, [old, new] for compare.
	Files []string `json:"files,omitempty"`
	// Compare-run fields.
	Regressions int     `json:"regressions,omitempty"`
	Threshold   float64 `json:"threshold,omitempty"`
	FloorNs     float64 `json:"floor_ns,omitempty"`
	// Measurement-run payload: the full result rows.
	Results []benchResult `json:"results,omitempty"`
}

// appendHistory appends one entry as a JSON line; a missing file is
// created, an existing one is never rewritten.
func appendHistory(path string, e historyEntry) error {
	e.Schema = historySchema
	e.Time = time.Now().UTC().Format(time.RFC3339)
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(data, '\n'))
	return err
}
