package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/axi"
	"repro/internal/event"
	"repro/internal/mine"
	"repro/internal/ocp"
	"repro/internal/trace"
)

// mineBenches is the spec-mining suite: corpus decode, pattern
// inference alone, the validation gate alone, and the full validated
// pipeline, each on an in-process protocol-model corpus (OCP Fig. 6
// simple reads and AXI4 burst reads; gaps vary per segment so the miner
// sees realistic inter-transaction spacing).
func mineBenches() []namedBench {
	ocpCorpus := modelCorpus(func(gap int) trace.Trace {
		return ocp.NewModel(ocp.Config{Gap: gap, Seed: int64(gap)}).GenerateTrace(160)
	})
	axiCorpus := modelCorpus(func(gap int) trace.Trace {
		return axi.NewModel(axi.Config{Gap: gap, Seed: int64(gap)}).GenerateTrace(200)
	})
	ndjson := encodeNDJSON(ocpCorpus)

	ocpCfg := mine.Config{ChartName: "ocp", Clock: "ocp_clk", Seed: 1}
	axiCfg := mine.Config{ChartName: "axi", Clock: "aclk", Seed: 1}

	return []namedBench{
		{"MineReadNDJSONOcp", func(b *testing.B) {
			b.SetBytes(int64(len(ndjson)))
			for i := 0; i < b.N; i++ {
				if _, err := mine.ReadNDJSON(bytes.NewReader(ndjson)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MineInferOcpSimpleRead", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mine.Mine(ocpCorpus, ocpCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MineValidateGateOcpSimpleRead", func(b *testing.B) {
			ms, err := mine.Mine(ocpCorpus, ocpCfg)
			if err != nil || len(ms) == 0 {
				b.Fatalf("mine: %v (%d charts)", err, len(ms))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, m := range ms {
					mine.Validate(m, ocpCorpus, ocpCfg)
				}
			}
		}},
		{"MineValidatedAxi4Burst", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := mine.MineValidated(axiCorpus, axiCfg); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// modelCorpus builds one segment per gap in 1..6, mirroring the
// checked-in golden corpora.
func modelCorpus(gen func(gap int) trace.Trace) *mine.Corpus {
	c := &mine.Corpus{}
	for gap := 1; gap <= 6; gap++ {
		c.Segments = append(c.Segments, gen(gap))
	}
	return c
}

// encodeNDJSON renders a corpus in the miner's NDJSON wire format.
func encodeNDJSON(c *mine.Corpus) []byte {
	var b bytes.Buffer
	for si, seg := range c.Segments {
		if si > 0 {
			b.WriteByte('\n')
		}
		for _, st := range seg {
			b.Write(encodeStateJSON(st))
			b.WriteByte('\n')
		}
	}
	return b.Bytes()
}

func encodeStateJSON(st event.State) []byte {
	events := make([]string, 0, len(st.Events))
	for e, v := range st.Events {
		if v {
			events = append(events, e)
		}
	}
	sort.Strings(events)
	line, _ := json.Marshal(struct {
		Events []string        `json:"events"`
		Props  map[string]bool `json:"props,omitempty"`
	}{Events: events, Props: st.Props})
	return line
}

// writeMineBenchJSON runs only the mining suite — the CI mining smoke.
func writeMineBenchJSON(path string) error {
	data, err := benchSummary("cescbench/mine/v1", mineBenches())
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// mineSummary prints the narrative table variant used by the default
// (no -json) report.
func mineSummary() {
	fmt.Println("## Spec mining (corpus → validated charts)")
	fmt.Println()
	for _, bm := range mineBenches() {
		r := testing.Benchmark(func(b *testing.B) { b.ReportAllocs(); bm.fn(b) })
		fmt.Printf("  %-32s %12.0f ns/op %8d allocs/op\n",
			bm.name, float64(r.NsPerOp()), r.AllocsPerOp())
	}
	fmt.Println()
}
