package main

// Benchmark comparison: `cescbench -compare old.json new.json` diffs two
// machine-readable summaries (as written by -json / -obs-json) and exits
// nonzero if the new run regressed. Micro-benchmarks are noisy — a naive
// "slower than before" gate flakes constantly on shared CI runners — so
// the verdict is deliberately conservative:
//
//   - time regression: ns/op grew by more than -threshold (relative,
//     default 50%) AND by more than -floor (absolute, default 50ns).
//     Both must trip; the floor keeps sub-100ns benchmarks from failing
//     on scheduler jitter that is large in percent but trivial in cost.
//   - alloc regression: allocs/op increased at all. Allocation counts
//     are deterministic, so any increase is a real change — this is the
//     gate that protects the "0 allocs/op on the packed hot path"
//     invariant.
//
// Benchmarks present in only one file are reported but never fail the
// gate (suites grow across PRs).

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchFile is the on-disk shape shared by -json and -obs-json outputs.
type benchFile struct {
	Schema  string        `json:"schema"`
	Results []benchResult `json:"results"`
}

// gateRule is one per-benchmark override of the global compare gate,
// loaded from the -thresholds file (a JSON map of benchmark name to
// rule). A nil field inherits the global flag, so a rule can tighten
// just one axis — e.g. the bit-sliced lane benches carry a hard ns/op
// ceiling while the rest of the suite keeps the relative gate.
type gateRule struct {
	// Threshold is the relative ns/op growth allowed (0.5 = +50%).
	Threshold *float64 `json:"threshold,omitempty"`
	// FloorNs is the absolute ns/op growth a time regression must also
	// exceed.
	FloorNs *float64 `json:"floor_ns,omitempty"`
	// MaxNsPerOp, when set, fails the gate outright if the new run's
	// ns/op exceeds it — an absolute budget independent of the old run
	// (acceptance ceilings, e.g. 20ns/monitor-tick x 64 lanes).
	MaxNsPerOp *float64 `json:"max_ns_per_op,omitempty"`
	// MaxAllocsPerOp, when set, fails the gate outright if the new run
	// allocates more than this per op. Unlike the relative alloc gate it
	// applies to benchmarks with no baseline too, so a freshly added
	// bench can pin "disabled tracing is 0 allocs/op" from its first run.
	MaxAllocsPerOp *int64 `json:"max_allocs_per_op,omitempty"`
}

// loadThresholds reads a -thresholds override file.
func loadThresholds(path string) (map[string]gateRule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]gateRule
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// compareVerdict classifies one matched benchmark pair.
type compareVerdict int

const (
	verdictOK compareVerdict = iota
	verdictImproved
	verdictSlower // over relative threshold OR absolute floor, but not both
	verdictTimeRegression
	verdictAllocRegression
)

// compareRow is the diff of one benchmark name across the two files.
type compareRow struct {
	Name     string
	Old, New *benchResult
	Verdict  compareVerdict
}

// compareResults matches benchmarks by name and classifies each pair.
// threshold is the relative ns/op growth allowed (0.5 = +50%); floorNs
// is the absolute ns/op growth a time regression must also exceed.
// overrides (may be nil) substitutes per-benchmark gate rules by name.
func compareResults(old, new []benchResult, threshold, floorNs float64, overrides map[string]gateRule) []compareRow {
	oldByName := make(map[string]*benchResult, len(old))
	for i := range old {
		oldByName[old[i].Name] = &old[i]
	}
	newByName := make(map[string]*benchResult, len(new))
	for i := range new {
		newByName[new[i].Name] = &new[i]
	}
	var rows []compareRow
	for i := range old {
		o := &old[i]
		n, ok := newByName[o.Name]
		if !ok {
			rows = append(rows, compareRow{Name: o.Name, Old: o})
			continue
		}
		th, fl := threshold, floorNs
		var maxNs *float64
		var maxAllocs *int64
		if r, ok := overrides[o.Name]; ok {
			if r.Threshold != nil {
				th = *r.Threshold
			}
			if r.FloorNs != nil {
				fl = *r.FloorNs
			}
			maxNs = r.MaxNsPerOp
			maxAllocs = r.MaxAllocsPerOp
		}
		v := classify(o, n, th, fl)
		if maxNs != nil && n.NsPerOp > *maxNs && v != verdictAllocRegression {
			v = verdictTimeRegression
		}
		if maxAllocs != nil && n.AllocsPerOp > *maxAllocs {
			v = verdictAllocRegression
		}
		rows = append(rows, compareRow{Name: o.Name, Old: o, New: n, Verdict: v})
	}
	for i := range new {
		n := &new[i]
		if _, ok := oldByName[n.Name]; ok {
			continue
		}
		// No baseline — only the absolute ceilings can judge a new bench.
		v := verdictOK
		if r, ok := overrides[n.Name]; ok {
			switch {
			case r.MaxAllocsPerOp != nil && n.AllocsPerOp > *r.MaxAllocsPerOp:
				v = verdictAllocRegression
			case r.MaxNsPerOp != nil && n.NsPerOp > *r.MaxNsPerOp:
				v = verdictTimeRegression
			}
		}
		rows = append(rows, compareRow{Name: n.Name, New: n, Verdict: v})
	}
	return rows
}

func classify(o, n *benchResult, threshold, floorNs float64) compareVerdict {
	if n.AllocsPerOp > o.AllocsPerOp {
		return verdictAllocRegression
	}
	grew := n.NsPerOp - o.NsPerOp
	overRel := n.NsPerOp > o.NsPerOp*(1+threshold)
	overAbs := grew > floorNs
	switch {
	case overRel && overAbs:
		return verdictTimeRegression
	case overRel || overAbs:
		return verdictSlower
	case n.NsPerOp < o.NsPerOp*(1-threshold) && o.NsPerOp-n.NsPerOp > floorNs:
		return verdictImproved
	default:
		return verdictOK
	}
}

func loadBenchFile(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Results) == 0 {
		return f, fmt.Errorf("%s: no benchmark results", path)
	}
	return f, nil
}

// runCompare is the -compare entry point. Returns the number of
// regressions (the caller exits nonzero if > 0).
func runCompare(oldPath, newPath string, threshold, floorNs float64, overrides map[string]gateRule) (int, error) {
	oldFile, err := loadBenchFile(oldPath)
	if err != nil {
		return 0, err
	}
	newFile, err := loadBenchFile(newPath)
	if err != nil {
		return 0, err
	}
	if oldFile.Schema != newFile.Schema {
		return 0, fmt.Errorf("schema mismatch: %s has %q, %s has %q (compare like with like)",
			oldPath, oldFile.Schema, newPath, newFile.Schema)
	}
	rows := compareResults(oldFile.Results, newFile.Results, threshold, floorNs, overrides)

	fmt.Printf("# cescbench compare — %s vs %s (threshold +%.0f%%, floor %.0fns)\n\n",
		oldPath, newPath, threshold*100, floorNs)
	fmt.Println("| benchmark | old ns/op | new ns/op | Δ | old allocs | new allocs | verdict |")
	fmt.Println("|-----------|-----------|-----------|---|------------|------------|---------|")
	regressions := 0
	for _, r := range rows {
		switch {
		case r.New == nil:
			fmt.Printf("| %s | %.1f | — | — | %d | — | removed |\n", r.Name, r.Old.NsPerOp, r.Old.AllocsPerOp)
			continue
		case r.Old == nil:
			verdict := "new"
			switch r.Verdict {
			case verdictTimeRegression:
				verdict = "TIME REGRESSION (over ceiling)"
				regressions++
			case verdictAllocRegression:
				verdict = "ALLOC REGRESSION (over ceiling)"
				regressions++
			}
			fmt.Printf("| %s | — | %.1f | — | — | %d | %s |\n", r.Name, r.New.NsPerOp, r.New.AllocsPerOp, verdict)
			continue
		}
		delta := fmt.Sprintf("%+.1f%%", 100*(r.New.NsPerOp-r.Old.NsPerOp)/r.Old.NsPerOp)
		verdict := "ok"
		switch r.Verdict {
		case verdictImproved:
			verdict = "improved"
		case verdictSlower:
			verdict = "slower (within gate)"
		case verdictTimeRegression:
			verdict = "TIME REGRESSION"
			regressions++
		case verdictAllocRegression:
			verdict = "ALLOC REGRESSION"
			regressions++
		}
		fmt.Printf("| %s | %.1f | %.1f | %s | %d | %d | %s |\n",
			r.Name, r.Old.NsPerOp, r.New.NsPerOp, delta, r.Old.AllocsPerOp, r.New.AllocsPerOp, verdict)
	}
	fmt.Println()
	if regressions > 0 {
		fmt.Printf("FAIL: %d regression(s)\n", regressions)
	} else {
		fmt.Println("PASS: no regressions")
	}
	return regressions, nil
}
