package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func br(name string, ns float64, allocs int64) benchResult {
	return benchResult{Name: name, Iterations: 1000, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestClassifyNoiseGate(t *testing.T) {
	const threshold, floor = 0.5, 50.0
	cases := []struct {
		name     string
		old, new benchResult
		want     compareVerdict
	}{
		// 60ns -> 80ns is +33% and +20ns: under both gates.
		{"small-drift", br("a", 60, 0), br("a", 80, 0), verdictOK},
		// 60ns -> 100ns is +67% but only +40ns: percent-only trip is
		// jitter on a fast benchmark, not a regression.
		{"fast-bench-jitter", br("a", 60, 0), br("a", 100, 0), verdictSlower},
		// 1000ns -> 1060ns is +60ns but only +6%: absolute-only trip on
		// a slow benchmark is noise too.
		{"slow-bench-jitter", br("a", 1000, 0), br("a", 1060, 0), verdictSlower},
		// 100ns -> 200ns trips both: real regression.
		{"real-regression", br("a", 100, 0), br("a", 200, 0), verdictTimeRegression},
		// Allocation counts are deterministic — any increase fails, even
		// when the time is unchanged.
		{"alloc-regression", br("a", 100, 0), br("a", 100, 1), verdictAllocRegression},
		{"alloc-drop-ok", br("a", 100, 3), br("a", 100, 1), verdictOK},
		// 400ns -> 100ns clears both gates in the other direction.
		{"improved", br("a", 400, 0), br("a", 100, 0), verdictImproved},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := classify(&c.old, &c.new, threshold, floor)
			if got != c.want {
				t.Fatalf("classify(%v, %v) = %d, want %d", c.old, c.new, got, c.want)
			}
		})
	}
}

func TestCompareResultsMatching(t *testing.T) {
	old := []benchResult{br("shared", 100, 0), br("removed", 50, 0)}
	new := []benchResult{br("shared", 120, 0), br("added", 70, 1)}
	rows := compareResults(old, new, 0.5, 50, nil)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byName := map[string]compareRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["shared"]; r.Old == nil || r.New == nil || r.Verdict != verdictOK {
		t.Fatalf("shared row = %+v", r)
	}
	if r := byName["removed"]; r.New != nil {
		t.Fatalf("removed row should have no new result: %+v", r)
	}
	if r := byName["added"]; r.Old != nil {
		t.Fatalf("added row should have no old result: %+v", r)
	}
}

func TestCompareOverrides(t *testing.T) {
	old := []benchResult{br("lane", 1000, 0), br("other", 100, 0)}
	// lane grows 20% — under the global gate, but the override pins an
	// absolute ceiling of 1100ns/op.
	new := []benchResult{br("lane", 1200, 0), br("other", 120, 0)}
	ceiling := 1100.0
	rows := compareResults(old, new, 0.5, 50, map[string]gateRule{
		"lane": {MaxNsPerOp: &ceiling},
	})
	byName := map[string]compareRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if v := byName["lane"].Verdict; v != verdictTimeRegression {
		t.Fatalf("lane over its max_ns_per_op ceiling: verdict %d, want %d", v, verdictTimeRegression)
	}
	if v := byName["other"].Verdict; v != verdictOK {
		t.Fatalf("other (no override) verdict %d, want %d", v, verdictOK)
	}
	// A per-benchmark threshold can also loosen the gate: +100% on lane
	// with threshold 2.0 stays advisory ("slower", absolute floor only)
	// instead of failing, as long as the ceiling allows it.
	loose := 3000.0
	th := 2.0
	rows = compareResults(old, []benchResult{br("lane", 2000, 0), br("other", 120, 0)}, 0.5, 50,
		map[string]gateRule{"lane": {Threshold: &th, MaxNsPerOp: &loose}})
	for _, r := range rows {
		byName[r.Name] = r
	}
	if v := byName["lane"].Verdict; v != verdictSlower {
		t.Fatalf("loosened lane verdict %d, want %d", v, verdictSlower)
	}
}

func TestLoadThresholds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(path, []byte(`{"lane": {"max_ns_per_op": 1280, "threshold": 0.25}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := loadThresholds(path)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := rules["lane"]
	if !ok || r.MaxNsPerOp == nil || *r.MaxNsPerOp != 1280 || r.Threshold == nil || *r.Threshold != 0.25 || r.FloorNs != nil {
		t.Fatalf("rules[lane] = %+v", r)
	}
	if _, err := loadThresholds(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing thresholds file should error")
	}
}

func writeBenchFixture(t *testing.T, name, schema string, results []benchResult) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f := benchFile{Schema: schema, Results: results}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareEndToEnd(t *testing.T) {
	old := writeBenchFixture(t, "old.json", "cescbench/v1", []benchResult{
		br("steady", 100, 0), br("hot", 100, 0),
	})
	// No regression: steady drifts within the gate.
	good := writeBenchFixture(t, "good.json", "cescbench/v1", []benchResult{
		br("steady", 130, 0), br("hot", 90, 0),
	})
	n, err := runCompare(old, good, 0.5, 50, nil)
	if err != nil || n != 0 {
		t.Fatalf("good compare: regressions=%d err=%v", n, err)
	}
	// Regression: hot doubles and grows allocs.
	bad := writeBenchFixture(t, "bad.json", "cescbench/v1", []benchResult{
		br("steady", 100, 0), br("hot", 400, 2),
	})
	n, err = runCompare(old, bad, 0.5, 50, nil)
	if err != nil || n != 1 {
		t.Fatalf("bad compare: regressions=%d err=%v", n, err)
	}
	// Schema mismatch is an error, not a silent pass.
	mismatched := writeBenchFixture(t, "obs.json", "cescbench/obs/v1", []benchResult{br("steady", 100, 0)})
	if _, err := runCompare(old, mismatched, 0.5, 50, nil); err == nil {
		t.Fatal("schema mismatch should error")
	}
}
