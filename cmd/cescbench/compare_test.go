package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func br(name string, ns float64, allocs int64) benchResult {
	return benchResult{Name: name, Iterations: 1000, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestClassifyNoiseGate(t *testing.T) {
	const threshold, floor = 0.5, 50.0
	cases := []struct {
		name     string
		old, new benchResult
		want     compareVerdict
	}{
		// 60ns -> 80ns is +33% and +20ns: under both gates.
		{"small-drift", br("a", 60, 0), br("a", 80, 0), verdictOK},
		// 60ns -> 100ns is +67% but only +40ns: percent-only trip is
		// jitter on a fast benchmark, not a regression.
		{"fast-bench-jitter", br("a", 60, 0), br("a", 100, 0), verdictSlower},
		// 1000ns -> 1060ns is +60ns but only +6%: absolute-only trip on
		// a slow benchmark is noise too.
		{"slow-bench-jitter", br("a", 1000, 0), br("a", 1060, 0), verdictSlower},
		// 100ns -> 200ns trips both: real regression.
		{"real-regression", br("a", 100, 0), br("a", 200, 0), verdictTimeRegression},
		// Allocation counts are deterministic — any increase fails, even
		// when the time is unchanged.
		{"alloc-regression", br("a", 100, 0), br("a", 100, 1), verdictAllocRegression},
		{"alloc-drop-ok", br("a", 100, 3), br("a", 100, 1), verdictOK},
		// 400ns -> 100ns clears both gates in the other direction.
		{"improved", br("a", 400, 0), br("a", 100, 0), verdictImproved},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := classify(&c.old, &c.new, threshold, floor)
			if got != c.want {
				t.Fatalf("classify(%v, %v) = %d, want %d", c.old, c.new, got, c.want)
			}
		})
	}
}

func TestCompareResultsMatching(t *testing.T) {
	old := []benchResult{br("shared", 100, 0), br("removed", 50, 0)}
	new := []benchResult{br("shared", 120, 0), br("added", 70, 1)}
	rows := compareResults(old, new, 0.5, 50)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byName := map[string]compareRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["shared"]; r.Old == nil || r.New == nil || r.Verdict != verdictOK {
		t.Fatalf("shared row = %+v", r)
	}
	if r := byName["removed"]; r.New != nil {
		t.Fatalf("removed row should have no new result: %+v", r)
	}
	if r := byName["added"]; r.Old != nil {
		t.Fatalf("added row should have no old result: %+v", r)
	}
}

func writeBenchFixture(t *testing.T, name, schema string, results []benchResult) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f := benchFile{Schema: schema, Results: results}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompareEndToEnd(t *testing.T) {
	old := writeBenchFixture(t, "old.json", "cescbench/v1", []benchResult{
		br("steady", 100, 0), br("hot", 100, 0),
	})
	// No regression: steady drifts within the gate.
	good := writeBenchFixture(t, "good.json", "cescbench/v1", []benchResult{
		br("steady", 130, 0), br("hot", 90, 0),
	})
	n, err := runCompare(old, good, 0.5, 50)
	if err != nil || n != 0 {
		t.Fatalf("good compare: regressions=%d err=%v", n, err)
	}
	// Regression: hot doubles and grows allocs.
	bad := writeBenchFixture(t, "bad.json", "cescbench/v1", []benchResult{
		br("steady", 100, 0), br("hot", 400, 2),
	})
	n, err = runCompare(old, bad, 0.5, 50)
	if err != nil || n != 1 {
		t.Fatalf("bad compare: regressions=%d err=%v", n, err)
	}
	// Schema mismatch is an error, not a silent pass.
	mismatched := writeBenchFixture(t, "obs.json", "cescbench/obs/v1", []benchResult{br("steady", 100, 0)})
	if _, err := runCompare(old, mismatched, 0.5, 50); err == nil {
		t.Fatal("schema mismatch should error")
	}
}
