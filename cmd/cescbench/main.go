// Command cescbench is the reproduction driver: it re-runs the paper's
// experiments (see EXPERIMENTS.md) and prints a markdown summary —
// structural checks for each figure's monitor, detection/violation
// campaigns against the protocol models, baseline parity, and the
// construction ablation. `go test -bench=.` gives the rigorous numbers;
// this command gives the one-shot narrative table.
//
//	go run ./cmd/cescbench
//	go run ./cmd/cescbench -json BENCH_seed.json   # machine-readable micro-benchmarks
//	go run ./cmd/cescbench -compare old.json new.json   # perf gate (see compare.go)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/event"
	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/ocp"
	"repro/internal/readproto"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/verif"
	"repro/internal/wal"
)

func main() {
	jsonPath := flag.String("json", "", "run the micro-benchmarks and write a machine-readable summary (name, ns/op, allocs/op) to this path instead of the narrative tables")
	obsPath := flag.String("obs-json", "", "run the observability-overhead suite (tracing off / ring-only / full provenance) and write the summary to this path")
	lanePath := flag.String("lane-json", "", "run only the bit-sliced lane + batch-decode suite (fast; the CI lanebench smoke) and write the summary to this path")
	minePath := flag.String("mine-json", "", "run only the spec-mining suite (corpus decode, inference, validation gate; the CI mining smoke) and write the summary to this path")
	compare := flag.Bool("compare", false, "compare two -json/-obs-json/-lane-json summaries: cescbench -compare old.json new.json; exits 1 on regression")
	threshold := flag.Float64("threshold", 0.5, "relative ns/op growth tolerated by -compare (0.5 = +50%)")
	floorNs := flag.Float64("floor", 50, "absolute ns/op growth a -compare time regression must also exceed")
	thresholds := flag.String("thresholds", "", "per-benchmark gate overrides for -compare: JSON map of name to {threshold, floor_ns, max_ns_per_op}")
	history := flag.String("history", "", "append one JSON line per -json/-obs-json/-lane-json/-compare run to this file (e.g. BENCH_HISTORY.jsonl)")
	flag.Parse()
	// recordHistory re-reads the summary a measurement run just wrote (or
	// a compare run's new side) and appends the history line.
	recordHistory := func(kind string, regressions int, files ...string) {
		if *history == "" {
			return
		}
		e := historyEntry{Kind: kind, Files: files}
		if f, err := loadBenchFile(files[len(files)-1]); err == nil {
			e.BenchSchema = f.Schema
			if kind != "compare" {
				e.Results = f.Results
			}
		}
		if kind == "compare" {
			e.Regressions = regressions
			e.Threshold = *threshold
			e.FloorNs = *floorNs
		}
		if err := appendHistory(*history, e); err != nil {
			fatal(err)
		}
	}
	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("usage: cescbench -compare old.json new.json"))
		}
		var overrides map[string]gateRule
		if *thresholds != "" {
			var err error
			if overrides, err = loadThresholds(*thresholds); err != nil {
				fatal(err)
			}
		}
		regressions, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, *floorNs, overrides)
		if err != nil {
			fatal(err)
		}
		recordHistory("compare", regressions, flag.Arg(0), flag.Arg(1))
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	if *obsPath != "" {
		if err := writeObsBenchJSON(*obsPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *obsPath)
		recordHistory("obs-json", 0, *obsPath)
		return
	}
	if *lanePath != "" {
		if err := writeLaneBenchJSON(*lanePath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *lanePath)
		recordHistory("lane-json", 0, *lanePath)
		return
	}
	if *minePath != "" {
		if err := writeMineBenchJSON(*minePath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *minePath)
		recordHistory("mine-json", 0, *minePath)
		return
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		recordHistory("json", 0, *jsonPath)
		return
	}
	fmt.Println("# CESC monitor synthesis — reproduction summary")
	fmt.Println()
	structural()
	campaigns()
	parity()
	multiclock()
	ablation()
	mineSummary()
}

// benchResult is one row of the -json summary; the fields mirror what
// `go test -bench` prints so the perf trajectory is machine-readable
// across PRs.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// walBatchPayload renders a tick batch the way the cescd journal does,
// so the WAL benchmarks measure realistic record sizes.
func walBatchPayload(tr []event.State) []byte {
	ticks := make([]server.StateJSON, len(tr))
	for i, s := range tr {
		ticks[i] = server.EncodeState(s)
	}
	data, err := json.Marshal(map[string]any{"jseq": 1, "ticks": ticks})
	if err != nil {
		fatal(err)
	}
	return data
}

// figBench is one figure's synthesized monitor plus its model traffic in
// both map and packed form — the shared setup of the perf suites.
type figBench struct {
	name    string
	mon     *monitor.Monitor
	prog    *monitor.Program
	traffic []event.State
	packed  []event.Packed
}

// figBenches synthesizes the three protocol figures the paper evaluates
// (Fig. 6 OCP simple read, Fig. 7 OCP burst read, Fig. 8 AHB
// transaction) with deterministic model traffic.
func figBenches() ([]figBench, error) {
	out := []figBench{
		{name: "Fig6OCP", traffic: ocp.NewModel(ocp.Config{Gap: 2, Seed: 1}).GenerateTrace(4096)},
		{name: "Fig7OCPBurst", traffic: ocp.NewModel(ocp.Config{Gap: 2, Seed: 2, Burst: true}).GenerateTrace(4096)},
		{name: "Fig8AHB", traffic: amba.NewModel(amba.Config{Gap: 2, Seed: 3}).GenerateTrace(4096)},
	}
	charts := []chart.Chart{ocp.SimpleReadChart(), ocp.BurstReadChart(), amba.TransactionChart()}
	for i := range out {
		m, err := synth.Synthesize(charts[i], nil)
		if err != nil {
			return nil, err
		}
		prog, err := monitor.CompileProgram(m)
		if err != nil {
			return nil, err
		}
		out[i].mon = m
		out[i].prog = prog
		out[i].packed = trace.Trace(out[i].traffic).Pack(prog.Support())
	}
	return out, nil
}

// writeBenchJSON runs the hot-path micro-benchmarks via testing.Benchmark
// and writes a BENCH_*.json-style summary.
func writeBenchJSON(path string) error {
	figs, err := figBenches()
	if err != nil {
		return err
	}
	m, prog6, traffic, packed6 := figs[0].mon, figs[0].prog, figs[0].traffic, figs[0].packed
	m7, prog7, traffic7, packed7 := figs[1].mon, figs[1].prog, figs[1].traffic, figs[1].packed
	m8, prog8, traffic8, packed8 := figs[2].mon, figs[2].prog, figs[2].traffic, figs[2].packed

	benches := []namedBench{
		{"SynthesizeFig6OCPSimpleRead", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := synth.Synthesize(ocp.SimpleReadChart(), nil); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"EngineStepFig6OCPTraffic", func(b *testing.B) {
			eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
			for i := 0; i < b.N; i++ {
				eng.Step(traffic[i%len(traffic)])
			}
		}},
		{"CompiledStepFig6OCPTraffic", func(b *testing.B) {
			c, err := monitor.Compile(m)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				c.Step(traffic[i%len(traffic)])
			}
		}},
		{"PackedStepFig6OCPTraffic", func(b *testing.B) {
			eng := prog6.NewEngine(nil, monitor.ModeDetect)
			for i := 0; i < b.N; i++ {
				eng.StepPacked(packed6[i%len(packed6)])
			}
		}},
		{"EngineStepFig7OCPBurstTraffic", func(b *testing.B) {
			eng := monitor.NewEngine(m7, nil, monitor.ModeDetect)
			for i := 0; i < b.N; i++ {
				eng.Step(traffic7[i%len(traffic7)])
			}
		}},
		{"PackedStepFig7OCPBurstTraffic", func(b *testing.B) {
			eng := prog7.NewEngine(nil, monitor.ModeDetect)
			for i := 0; i < b.N; i++ {
				eng.StepPacked(packed7[i%len(packed7)])
			}
		}},
		{"EngineStepFig8AHBTraffic", func(b *testing.B) {
			eng := monitor.NewEngine(m8, nil, monitor.ModeDetect)
			for i := 0; i < b.N; i++ {
				eng.Step(traffic8[i%len(traffic8)])
			}
		}},
		{"PackedStepFig8AHBTraffic", func(b *testing.B) {
			eng := prog8.NewEngine(nil, monitor.ModeDetect)
			for i := 0; i < b.N; i++ {
				eng.StepPacked(packed8[i%len(packed8)])
			}
		}},
		{"ServerIngestDecodePackTick", func(b *testing.B) {
			// The per-tick half of the daemon's decode-once ingest:
			// NDJSON wire form -> event.State -> one packed valuation
			// shared by every monitor in the session.
			vocab := event.NewVocabulary()
			if err := vocab.DeclareSupport(prog6.Support()); err != nil {
				b.Fatal(err)
			}
			lines := make([][]byte, 64)
			for i := range lines {
				data, err := json.Marshal(server.EncodeState(traffic[i]))
				if err != nil {
					b.Fatal(err)
				}
				lines[i] = data
			}
			var buf event.Packed
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var tick server.StateJSON
				if err := json.Unmarshal(lines[i%len(lines)], &tick); err != nil {
					b.Fatal(err)
				}
				buf = vocab.PackInto(tick.ToState(), buf)
			}
		}},
		{"ScoreboardAddChkDel", func(b *testing.B) {
			sb := monitor.NewScoreboard()
			for i := 0; i < b.N; i++ {
				sb.Add(int64(i), "e")
				sb.Chk("e")
				sb.Del("e")
			}
		}},
		{"WALAppend64TickBatch", func(b *testing.B) {
			payload := walBatchPayload(traffic[:64])
			dir := b.TempDir()
			mgr, err := wal.OpenManager(wal.Options{Dir: dir, Sync: wal.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			j, err := mgr.OpenJournal("bench", func(wal.Record) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(2, payload); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"WALReplay64TickBatches", func(b *testing.B) {
			payload := walBatchPayload(traffic[:64])
			dir := b.TempDir()
			mgr, err := wal.OpenManager(wal.Options{Dir: dir, Sync: wal.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			j, err := mgr.OpenJournal("bench", func(wal.Record) error { return nil })
			if err != nil {
				b.Fatal(err)
			}
			const records = 256
			for i := 0; i < records; i++ {
				if err := j.Append(2, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				jr, err := mgr.OpenJournal("bench", func(wal.Record) error { n++; return nil })
				if err != nil {
					b.Fatal(err)
				}
				jr.Abandon()
				if n != records {
					b.Fatalf("replayed %d records, want %d", n, records)
				}
			}
		}},
	}
	lanes, err := laneBenches(figs)
	if err != nil {
		return err
	}
	benches = append(benches, lanes...)
	data, err := benchSummary("cescbench/v1", benches)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// laneBenches is the bit-sliced hot-path suite: for each figure, one
// bench stepping a full 64-lane bank in lockstep (ns/op there is 64
// monitor-ticks — the 20ns-per-monitor-tick acceptance ceiling is
// 1280ns/op, enforced via PERF_THRESHOLDS.json) and one bench decoding
// a 64-tick NDJSON batch straight into bitset lanes (the zero-copy
// ingest path; the alloc gate pins it at 0 allocs/op).
func laneBenches(figs []figBench) ([]namedBench, error) {
	var benches []namedBench
	for i := range figs {
		fig := figs[i]
		tab, err := monitor.CompileTable(fig.mon)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", fig.name, err)
		}
		benches = append(benches,
			namedBench{"LaneStepUniform64x" + fig.name, func(b *testing.B) {
				bank := monitor.NewLaneBank(tab)
				for l := 0; l < monitor.MaxLanes; l++ {
					if _, ok := bank.Join(); !ok {
						b.Fatal("lane bank full early")
					}
				}
				sup := tab.Support()
				vals := make([]uint64, len(fig.traffic))
				for j, st := range fig.traffic {
					vals[j] = uint64(sup.Valuation(st))
				}
				b.ResetTimer()
				for j := 0; j < b.N; j++ {
					bank.StepUniform(vals[j%len(vals)])
				}
			}},
			namedBench{"BatchDecode64Tick" + fig.name, func(b *testing.B) {
				vocab := event.NewVocabulary()
				if err := vocab.DeclareSupport(fig.prog.Support()); err != nil {
					b.Fatal(err)
				}
				var body []byte
				for _, st := range fig.traffic[:64] {
					line, err := json.Marshal(server.EncodeState(st))
					if err != nil {
						b.Fatal(err)
					}
					body = append(body, line...)
					body = append(body, '\n')
				}
				dec := event.NewBatchDecoder(vocab)
				var pb event.PackedBatch
				if n, err := dec.Decode(body, &pb, 0); err != nil || n != 64 {
					b.Fatalf("warm decode: n=%d err=%v", n, err)
				}
				b.ResetTimer()
				for j := 0; j < b.N; j++ {
					if _, err := dec.Decode(body, &pb, 0); err != nil {
						b.Fatal(err)
					}
				}
			}},
		)
	}
	return benches, nil
}

// writeLaneBenchJSON runs only the lane suite — the fast CI smoke that
// `make lanebench` compares against the checked-in BENCH_LANE.json.
func writeLaneBenchJSON(path string) error {
	figs, err := figBenches()
	if err != nil {
		return err
	}
	benches, err := laneBenches(figs)
	if err != nil {
		return err
	}
	data, err := benchSummary("cescbench/lane/v1", benches)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// namedBench is one micro-benchmark of a JSON suite.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// benchSummary runs each benchmark via testing.Benchmark and renders the
// machine-readable summary document.
func benchSummary(schema string, benches []namedBench) ([]byte, error) {
	out := struct {
		Schema  string        `json:"schema"`
		Results []benchResult `json:"results"`
	}{Schema: schema}
	for _, bm := range benches {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bm.fn(b)
		})
		out.Results = append(out.Results, benchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// writeObsBenchJSON measures what the observability plane costs on the
// packed stepping hot path, per figure, at three levels:
//
//	ObsDisabled…  — StepPacked plus a disabled Tracer.Record call per
//	                tick: the production default. Must stay 0 allocs/op,
//	                within noise of the plain PackedStep numbers.
//	ObsRing…      — StepPacked plus an enabled tracer recording one span
//	                per tick into the lock-free ring (worst case: real
//	                deployments record per batch, ~64-4096x fewer).
//	ObsProvenance… — StepPacked with diagnostics armed (depth 8), so each
//	                violation assembles full provenance (guard strings,
//	                valuation, recent window).
//	ObsFlightRec… — StepPacked with tracing disabled but the always-on
//	                flight recorder armed, noting one event per 4096
//	                ticks (the per-batch cadence of real deployments).
//	                Must stay 0 allocs/op: arming the black box is free
//	                on the hot path.
//
// Two fleet-tracing micro-benches ride along, not per figure:
//
//	ObsTraceHLCNow — one hybrid-logical-clock reading, the cost added to
//	                every enabled span and every cross-node hop.
//	ObsTracePropagationRecord — an enabled Record carrying the full
//	                cross-node propagation fields (node, parent token,
//	                kind, HLC), the per-batch cost when tracing is on.
func writeObsBenchJSON(path string) error {
	figs, err := figBenches()
	if err != nil {
		return err
	}
	var benches []namedBench
	for _, fig := range figs {
		fig := fig
		benches = append(benches,
			namedBench{"ObsDisabledPackedStep" + fig.name, func(b *testing.B) {
				eng := fig.prog.NewEngine(nil, monitor.ModeDetect)
				tr := obs.NewTracer(1, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.StepPacked(fig.packed[i%len(fig.packed)])
					tr.Record(0, obs.Span{Stage: obs.StageStep})
				}
			}},
			namedBench{"ObsRingPackedStep" + fig.name, func(b *testing.B) {
				eng := fig.prog.NewEngine(nil, monitor.ModeDetect)
				tr := obs.NewTracer(1, 1024)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.StepPacked(fig.packed[i%len(fig.packed)])
					tr.Record(0, obs.Span{Stage: obs.StageStep, Session: "bench", Ticks: 1})
				}
			}},
			namedBench{"ObsProvenancePackedStep" + fig.name, func(b *testing.B) {
				eng := fig.prog.NewEngine(nil, monitor.ModeDetect)
				eng.EnableDiagnostics(8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.StepPacked(fig.packed[i%len(fig.packed)])
				}
			}},
			namedBench{"ObsFlightRecPackedStep" + fig.name, func(b *testing.B) {
				eng := fig.prog.NewEngine(nil, monitor.ModeDetect)
				tr := obs.NewTracer(1, 0)
				rec := obs.NewFlightRecorder(30*time.Second, "", "bench", tr)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.StepPacked(fig.packed[i%len(fig.packed)])
					tr.Record(0, obs.Span{Stage: obs.StageStep})
					if i%4096 == 0 {
						rec.Note("bench", "", "tick")
					}
				}
			}},
		)
	}
	benches = append(benches,
		namedBench{"ObsTraceHLCNow", func(b *testing.B) {
			var clk obs.HLC
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clk.Now()
			}
		}},
		namedBench{"ObsTracePropagationRecord", func(b *testing.B) {
			tr := obs.NewTracer(1, 1024)
			tr.SetNode("bench-node")
			parent := obs.ParentToken("peer", 42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Record(0, obs.Span{
					Stage: obs.StageStep, Session: "bench", Ticks: 1,
					Trace: "bench-trace", Parent: parent, Kind: "proxied",
				})
			}
		}},
	)
	data, err := benchSummary("cescbench/obs/v1", benches)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func structural() {
	fmt.Println("## Figure monitors (structure)")
	fmt.Println()
	fmt.Println("| figure | chart | states | transitions | scoreboard ops |")
	fmt.Println("|--------|-------|--------|-------------|----------------|")
	rows := []struct {
		fig string
		c   chart.Chart
	}{
		{"Fig. 1", readproto.SingleClockChart()},
		{"Fig. 5", fig5()},
		{"Fig. 6", ocp.SimpleReadChart()},
		{"Fig. 7", ocp.BurstReadChart()},
		{"Fig. 8", amba.TransactionChart()},
	}
	for _, r := range rows {
		m, err := synth.Synthesize(r.c, nil)
		if err != nil {
			fatal(err)
		}
		nact := 0
		for _, ts := range m.Trans {
			for _, t := range ts {
				nact += len(t.Actions)
			}
		}
		fmt.Printf("| %s | %s | %d | %d | %d |\n",
			r.fig, r.c.Name(), m.States, m.NumTransitions(), nact)
	}
	fmt.Println()
}

func fig5() *chart.SCESC {
	return &chart.SCESC{
		ChartName: "fig5_causality", Clock: "clk", Instances: []string{"A", "B"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{{Event: "e1", Label: "l1"}, {Event: "e2"}}},
			{},
			{Events: []chart.EventSpec{{Event: "e3", Label: "l3"}}},
		},
		Arrows: []chart.Arrow{{From: "l1", To: "l3"}},
	}
}

func campaigns() {
	fmt.Println("## Fault-injection campaigns (50k cycles, 20% fault rate, assert mode)")
	fmt.Println()
	fmt.Println("| scenario | transactions | faulted | detected | violations | detection rate |")
	fmt.Println("|----------|--------------|---------|----------|------------|----------------|")
	type row struct {
		name string
		rep  verif.Report
		err  error
	}
	var rows []row
	r1, e1 := verif.RunOCPCampaign(ocp.Config{Gap: 2, Seed: 1, FaultRate: 0.2}, 50000, monitor.ModeAssert)
	rows = append(rows, row{"OCP simple read", r1, e1})
	r2, e2 := verif.RunOCPCampaign(ocp.Config{Gap: 2, Seed: 2, FaultRate: 0.2, Burst: true}, 50000, monitor.ModeAssert)
	rows = append(rows, row{"OCP burst read", r2, e2})
	r3, e3 := verif.RunOCPCampaign(ocp.Config{Gap: 2, Seed: 3, FaultRate: 0.2, Write: true}, 50000, monitor.ModeAssert)
	rows = append(rows, row{"OCP posted write", r3, e3})
	r4, e4 := verif.RunAMBACampaign(amba.Config{Gap: 2, Seed: 4, FaultRate: 0.2}, 50000, monitor.ModeAssert)
	rows = append(rows, row{"AHB CLI write", r4, e4})
	r5, e5 := verif.RunAMBACampaign(amba.Config{Gap: 2, Seed: 5, FaultRate: 0.2, Read: true}, 50000, monitor.ModeAssert)
	rows = append(rows, row{"AHB CLI read", r5, e5})
	for _, r := range rows {
		if r.err != nil {
			fatal(r.err)
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %.3f |\n",
			r.name, r.rep.Transactions, r.rep.Faulted, r.rep.Accepts, r.rep.Violations, r.rep.DetectionRate())
	}
	fmt.Println()
}

func parity() {
	fmt.Println("## Baseline parity (synthesized vs hand-written, mixed faulty traffic)")
	fmt.Println()
	fmt.Println("| scenario | synthesized accepts | manual accepts | identical ticks |")
	fmt.Println("|----------|---------------------|----------------|-----------------|")
	tr1 := ocp.NewModel(ocp.Config{Gap: 1, Seed: 6, FaultRate: 0.3}).GenerateTrace(20000)
	p1, err := verif.OCPSimpleReadParity(tr1)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("| OCP simple read | %d | %d | %v |\n", len(p1.SynthAccepts), len(p1.ManualAccepts), p1.Agree())
	tr2 := ocp.NewModel(ocp.Config{Gap: 1, Seed: 7, FaultRate: 0.3, Burst: true}).GenerateTrace(20000)
	p2, err := verif.OCPBurstReadParity(tr2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("| OCP burst read | %d | %d | %v |\n", len(p2.SynthAccepts), len(p2.ManualAccepts), p2.Agree())
	tr3 := amba.NewModel(amba.Config{Gap: 1, Seed: 8, FaultRate: 0.3}).GenerateTrace(20000)
	p3, err := verif.AHBTransactionParity(tr3)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("| AHB CLI write | %d | %d | %v |\n", len(p3.SynthAccepts), len(p3.ManualAccepts), p3.Agree())
	fmt.Println()
}

func multiclock() {
	fmt.Println("## Multi-clock (Fig. 2 GALS read on the simulator)")
	fmt.Println()
	s := sim.New()
	sys, err := readproto.Build(s, 8, 2, 2)
	if err != nil {
		fatal(err)
	}
	mm, err := mclock.Synthesize(readproto.MultiClockChart(), nil)
	if err != nil {
		fatal(err)
	}
	ex := mclock.NewExec(mm, monitor.ModeDetect)
	verif.AttachMulti(s, ex)
	if err := s.RunUntil(50000); err != nil {
		fatal(err)
	}
	v := ex.Verdict()
	fmt.Printf("- transactions issued: %d, coherent multi-domain accepts: %d\n", sys.Requests, v.Accepts)
	for i, d := range mm.Domains {
		fmt.Printf("- domain %s: %d local ticks, %d local accepts\n", d, v.PerDomain[i].Steps, v.PerDomain[i].Accepts)
	}
	fmt.Println()
}

func ablation() {
	fmt.Println("## Construction ablation (12-tick chart, 8-symbol support)")
	fmt.Println()
	sc := &chart.SCESC{ChartName: "scale", Clock: "clk"}
	for i := 0; i < 12; i++ {
		ev := fmt.Sprintf("s%d", i%8)
		next := fmt.Sprintf("s%d", (i+1)%8)
		sc.Lines = append(sc.Lines, chart.GridLine{Events: []chart.EventSpec{
			{Event: ev}, {Event: next, Negated: true},
		}})
	}
	timeIt := func(strategy synth.Strategy) time.Duration {
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := synth.Translate(sc, &synth.Options{Strategy: strategy}); err != nil {
				fatal(err)
			}
		}
		return time.Since(start) / reps
	}
	direct := timeIt(synth.StrategyDirect)
	enum := timeIt(synth.StrategyEnumerate)
	fmt.Printf("- symbolic (direct) construction:   %v\n", direct)
	fmt.Printf("- paper's per-valuation pseudocode: %v (%.0fx)\n", enum, float64(enum)/float64(direct))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
