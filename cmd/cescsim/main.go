// Command cescsim runs the bundled protocol models under the GALS
// simulator with synthesized monitors attached — the executable form of
// the paper's Figure 4 verification flow.
//
// Usage:
//
//	cescsim -protocol ocp-read|ocp-burst|ocp-write|ocp-handshake|amba|amba-read|gals [flags]
//
// Flags:
//
//	-cycles N       clock cycles to simulate (default 10000)
//	-gap N          idle cycles between transactions (default 2)
//	-wait N         slave wait states for ocp-write/ocp-handshake
//	-fault-rate F   probability of injecting a fault per transaction
//	-mode detect|assert
//	-seed N         workload seed
//	-vcd FILE       dump the observed trace as VCD
//	-diag           print violation diagnostics (assert mode)
//
// Replay mode checks an externally captured waveform against a spec
// instead of simulating:
//
//	cescsim -spec plan.cesc -replay waves.vcd [-mode assert] [-diag]
//
// (exit status 1 when any monitor records a violation).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/amba"
	"repro/internal/chart"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/readproto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/verif"
)

func main() {
	protocol := flag.String("protocol", "ocp-read",
		"ocp-read, ocp-burst, ocp-write, ocp-handshake, amba, amba-read, or gals")
	cycles := flag.Int("cycles", 10000, "cycles to simulate")
	gap := flag.Int("gap", 2, "idle cycles between transactions")
	wait := flag.Int("wait", 2, "slave wait states for ocp-write/ocp-handshake")
	faultRate := flag.Float64("fault-rate", 0, "fault injection probability per transaction")
	mode := flag.String("mode", "detect", "monitor mode: detect or assert")
	seed := flag.Int64("seed", 1, "workload seed")
	vcd := flag.String("vcd", "", "write observed trace as VCD to this file")
	diag := flag.Bool("diag", false, "print violation diagnostics (assert mode)")
	spec := flag.String("spec", "", "replay mode: .cesc file whose monitors check -replay")
	replay := flag.String("replay", "", "replay mode: VCD waveform to check against -spec")
	flag.Parse()

	if *spec != "" || *replay != "" {
		if *spec == "" || *replay == "" {
			fatal(fmt.Errorf("cescsim: replay mode needs both -spec and -replay"))
		}
		runReplay(*spec, *replay, *mode, *diag)
		return
	}

	var mmode monitor.Mode
	switch *mode {
	case "detect":
		mmode = monitor.ModeDetect
	case "assert":
		mmode = monitor.ModeAssert
	default:
		fatal(fmt.Errorf("cescsim: unknown mode %q", *mode))
	}

	switch *protocol {
	case "ocp-read", "ocp-burst", "ocp-write", "ocp-handshake":
		cfg := ocp.Config{
			Gap: *gap, Seed: *seed, FaultRate: *faultRate,
			Burst: *protocol == "ocp-burst",
			Write: *protocol == "ocp-write" || *protocol == "ocp-handshake",
		}
		if *protocol == "ocp-handshake" {
			cfg.AcceptDelay = *wait
		}
		runOCP(cfg, *cycles, mmode, *vcd, *diag)
	case "amba", "amba-read":
		cfg := amba.Config{Gap: *gap, Seed: *seed, FaultRate: *faultRate, Read: *protocol == "amba-read"}
		runAMBA(cfg, *cycles, mmode, *vcd, *diag)
	case "gals":
		runGALS(*cycles, *gap, mmode, *vcd)
	default:
		fatal(fmt.Errorf("cescsim: unknown protocol %q", *protocol))
	}
}

func runOCP(cfg ocp.Config, cycles int, mode monitor.Mode, vcd string, diag bool) {
	rep, err := verif.RunOCPCampaign(cfg, cycles, mode)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("protocol=ocp burst=%v write=%v %s\n", cfg.Burst, cfg.Write, rep)
	printDiagnostics(rep, diag)
	maybeVCD(vcd, func() trace.Trace {
		return ocp.NewModel(cfg).GenerateTrace(cycles)
	})
}

func runAMBA(cfg amba.Config, cycles int, mode monitor.Mode, vcd string, diag bool) {
	rep, err := verif.RunAMBACampaign(cfg, cycles, mode)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("protocol=amba read=%v %s\n", cfg.Read, rep)
	printDiagnostics(rep, diag)
	maybeVCD(vcd, func() trace.Trace {
		return amba.NewModel(cfg).GenerateTrace(cycles)
	})
}

func printDiagnostics(rep verif.Report, diag bool) {
	if !diag || len(rep.Diagnostics) == 0 {
		return
	}
	n := len(rep.Diagnostics)
	if n > 3 {
		n = 3
	}
	fmt.Printf("first %d violation diagnostics:\n", n)
	for _, d := range rep.Diagnostics[:n] {
		fmt.Print(d)
	}
}

func runGALS(cycles, gap int, mode monitor.Mode, vcd string) {
	s := sim.New()
	sys, err := readproto.Build(s, 8, 2, gap)
	if err != nil {
		fatal(err)
	}
	mm, err := mclock.Synthesize(readproto.MultiClockChart(), nil)
	if err != nil {
		fatal(err)
	}
	ex := mclock.NewExec(mm, mode)
	verif.AttachMulti(s, ex)
	if vcd != "" {
		s.Record(true)
	}
	if err := s.RunUntil(int64(cycles)); err != nil {
		fatal(err)
	}
	if vcd != "" {
		f, err := os.Create(vcd)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteGlobalVCD(f, s.Captured()); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote global VCD to %s\n", vcd)
	}
	v := ex.Verdict()
	fmt.Printf("protocol=gals time=%d requests=%d accepts=%d violations=%d scoreboard=%s\n",
		s.Now(), sys.Requests, v.Accepts, v.Violations, ex.Scoreboard())
	for i, d := range mm.Domains {
		st := v.PerDomain[i]
		fmt.Printf("  domain %s: steps=%d accepts=%d fallbacks=%d\n", d, st.Steps, st.Accepts, st.Fallbacks)
	}
}

func maybeVCD(path string, gen func() trace.Trace) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.WriteVCD(f, "cescsim", gen()); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote VCD to %s\n", path)
}

// runReplay checks an externally captured waveform against every
// single-clock chart of a .cesc spec: the VCD becomes a trace (signal
// kinds resolved from the spec's symbols), each synthesized monitor runs
// over it as a bank, and the per-monitor verdicts print with coverage.
func runReplay(specPath, vcdPath, mode string, diag bool) {
	arts, err := core.CompileFile(specPath, nil)
	if err != nil {
		fatal(err)
	}
	kinds := map[string]event.Kind{}
	bank := verif.NewBank()
	mmode := monitor.ModeDetect
	if mode == "assert" {
		mmode = monitor.ModeAssert
	}
	for _, a := range arts {
		for _, sym := range chart.Symbols(a.Chart) {
			kinds[sym.Name] = sym.Kind
		}
		if a.IsMultiClock() {
			fmt.Fprintf(os.Stderr, "cescsim: skipping multi-clock chart %q in replay (single-clock VCD)\n", a.Name)
			continue
		}
		bank.Add(a.Name, a.Single, mmode)
	}
	if bank.Len() == 0 {
		fatal(fmt.Errorf("cescsim: no single-clock charts in %s", specPath))
	}
	f, err := os.Open(vcdPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadVCD(f, func(name string) event.Kind { return kinds[name] })
	if err != nil {
		fatal(err)
	}
	bank.Run(tr)
	fmt.Printf("replayed %d cycles from %s against %s:\n", len(tr), vcdPath, specPath)
	fmt.Print(bank.Summary())
	if diag && bank.Failed() {
		for _, a := range arts {
			if a.Single == nil {
				continue
			}
			eng := bank.Engine(a.Name)
			if eng == nil {
				continue
			}
			for i, d := range eng.Diagnostics() {
				if i >= 2 {
					break
				}
				fmt.Printf("%s counterexample:\n%s", a.Name, d)
			}
		}
	}
	if bank.Failed() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
