// Command cescmine infers CESC charts from trace corpora — the inverse
// direction of cescc. It ingests NDJSON tick streams (the daemon's wire
// format; blank lines separate segments) or VCD dumps, mines recurring
// anchored windows into linear scenario charts plus their implication
// views, and — unless -validate=false — holds every candidate to the
// validation gate: zero violations over the source corpus across every
// execution tier and the reference-semantics oracle, and a near-miss
// mutant kill rate of at least -min-kill.
//
// Usage:
//
//	cescmine -name ocp_read -clock ocp_clk testdata/corpus/ocp_fig6_read.ndjson
//	cescmine -props 'MRespAccept' -o mined/ bus.vcd
//
// Charts are written to stdout (or one .cesc per chart under -o), each
// preceded by a gate-stats comment. Exit status: 0 when at least one
// chart survives, 1 when mining or the gate yields nothing, 2 on usage
// or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/mine"
)

func main() {
	var (
		name       = flag.String("name", "mined", "base name for mined charts")
		clock      = flag.String("clock", "clk", "clock name for single-clock charts")
		minSupport = flag.Int("min-support", 3, "minimum anchor windows per pattern")
		confidence = flag.Float64("confidence", 1.0, "marker/arrow confidence threshold")
		maxWindow  = flag.Int("max-window", 8, "maximum pattern length in ticks")
		negatives  = flag.Bool("negatives", false, "also mine negated (!e) markers")
		align      = flag.Bool("align", false, "anchor at tick 0 of every segment instead of rising edges")
		props      = flag.String("props", "", "comma-separated VCD signals to sample as propositions")
		minKill    = flag.Float64("min-kill", 0.95, "mutant kill rate the validation gate demands")
		seed       = flag.Int64("seed", 1, "seed for mutant sampling")
		validate   = flag.Bool("validate", true, "gate mined charts (corpus soundness + mutant discrimination)")
		outDir     = flag.String("o", "", "write one <chart>.cesc per mined chart into this directory")
		quiet      = flag.Bool("q", false, "suppress per-chart gate reports on stderr")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: cescmine [flags] corpus.ndjson|corpus.vcd ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	corpus, err := readCorpora(flag.Args(), splitProps(*props))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cescmine: %v\n", err)
		os.Exit(2)
	}

	cfg := mine.Config{
		MinSupport:  *minSupport,
		Confidence:  *confidence,
		MaxWindow:   *maxWindow,
		Negatives:   *negatives,
		AlignTraces: *align,
		Clock:       *clock,
		ChartName:   *name,
		Seed:        *seed,
		MinKill:     *minKill,
	}

	var kept []*mine.Mined
	var stats []string
	if *validate {
		ms, rs, err := mine.MineValidated(corpus, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cescmine: %v\n", err)
			os.Exit(2)
		}
		for i, m := range ms {
			r := rs[i]
			if !*quiet {
				verdict := "PASS"
				if !r.Pass {
					verdict = "REJECT: " + r.Reason
				}
				fmt.Fprintf(os.Stderr, "%s support=%d accepts=%d mutants=%d killed=%d %s\n",
					m.Name, m.Support, r.Accepts, r.Mutants, r.Killed, verdict)
			}
			if r.Pass {
				kept = append(kept, m)
				stats = append(stats, fmt.Sprintf("// support=%d accepts=%d mutants=%d killed=%d",
					m.Support, r.Accepts, r.Mutants, r.Killed))
			}
		}
	} else {
		ms, err := mine.Mine(corpus, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cescmine: %v\n", err)
			os.Exit(2)
		}
		for _, m := range ms {
			kept = append(kept, m)
			stats = append(stats, fmt.Sprintf("// support=%d unvalidated", m.Support))
		}
	}

	if len(kept) == 0 {
		fmt.Fprintln(os.Stderr, "cescmine: no charts survived")
		os.Exit(1)
	}
	if err := emit(kept, stats, *outDir); err != nil {
		fmt.Fprintf(os.Stderr, "cescmine: %v\n", err)
		os.Exit(2)
	}
}

// readCorpora reads every file (format by extension: .vcd is a VCD dump,
// anything else NDJSON) and merges the segments into one corpus.
func readCorpora(files, props []string) (*mine.Corpus, error) {
	merged := &mine.Corpus{}
	for _, f := range files {
		c, err := readCorpus(f, props)
		if err != nil {
			return nil, err
		}
		if len(c.Domains) > 0 {
			if len(files) > 1 {
				return nil, fmt.Errorf("%s: multi-clock corpora cannot be merged across files", f)
			}
			return c, nil
		}
		merged.Segments = append(merged.Segments, c.Segments...)
	}
	return merged, nil
}

func readCorpus(file string, props []string) (*mine.Corpus, error) {
	var r io.Reader
	if file == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if strings.EqualFold(filepath.Ext(file), ".vcd") {
		return mine.ReadVCD(r, props)
	}
	return mine.ReadNDJSON(r)
}

func splitProps(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// emit writes charts to stdout, or one file per chart when dir is set.
func emit(ms []*mine.Mined, stats []string, dir string) error {
	if dir == "" {
		for i, m := range ms {
			if i > 0 {
				fmt.Println()
			}
			fmt.Println(stats[i])
			fmt.Print(m.Source())
		}
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, m := range ms {
		path := filepath.Join(dir, m.Name+".cesc")
		if err := os.WriteFile(path, []byte(stats[i]+"\n"+m.Source()), 0o644); err != nil {
			return err
		}
		fmt.Println(path)
	}
	return nil
}
