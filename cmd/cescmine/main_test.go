package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mine"
	"repro/internal/parser"
)

const corpusDir = "../../testdata/corpus"

func TestSplitProps(t *testing.T) {
	if got := splitProps(""); got != nil {
		t.Errorf("empty: %v", got)
	}
	got := splitProps(" a, b ,,c ")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("split: %v", got)
	}
}

func TestReadCorpusByExtension(t *testing.T) {
	nd, err := readCorpus(filepath.Join(corpusDir, "ocp_fig6_read.ndjson"), nil)
	if err != nil {
		t.Fatalf("ndjson (regenerate with go test ./internal/mine -run Golden -update): %v", err)
	}
	if len(nd.Segments) < 2 {
		t.Fatalf("ndjson corpus has %d segments", len(nd.Segments))
	}
	vcd, err := readCorpus(filepath.Join(corpusDir, "ocp_fig6_read.vcd"), []string{"MRespAccept"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vcd.Segments) != 1 || len(vcd.Segments[0]) == 0 {
		t.Fatalf("vcd corpus shape: %d segments", len(vcd.Segments))
	}
}

func TestReadCorporaMergesSegments(t *testing.T) {
	f := filepath.Join(corpusDir, "ocp_fig6_read.ndjson")
	one, err := readCorpora([]string{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	two, err := readCorpora([]string{f, f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(two.Segments) != 2*len(one.Segments) {
		t.Fatalf("merge: %d vs 2×%d", len(two.Segments), len(one.Segments))
	}
}

// TestEmitFilesRoundTrip mines the checked-in OCP corpus end to end the
// way the CLI does, writes the charts to a temp dir, and re-parses each
// emitted file.
func TestEmitFilesRoundTrip(t *testing.T) {
	c, err := readCorpora([]string{filepath.Join(corpusDir, "ocp_fig6_read.ndjson")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mine.Config{ChartName: "ocp_read", Clock: "ocp_clk", Seed: 1}
	ms, rs, err := mine.MineValidated(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var kept []*mine.Mined
	var stats []string
	for i, m := range ms {
		if rs[i].Pass {
			kept = append(kept, m)
			stats = append(stats, "// stats")
		}
	}
	if len(kept) == 0 {
		t.Fatal("no charts passed the gate on the golden corpus")
	}
	dir := t.TempDir()
	if err := emit(kept, stats, dir); err != nil {
		t.Fatal(err)
	}
	for _, m := range kept {
		raw, err := os.ReadFile(filepath.Join(dir, m.Name+".cesc"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(raw), "// stats\n") {
			t.Errorf("%s: missing stats comment", m.Name)
		}
		cs, err := parser.Parse(string(raw))
		if err != nil {
			t.Fatalf("%s does not re-parse: %v", m.Name, err)
		}
		if len(cs.Charts) != 2 {
			t.Fatalf("%s: %d charts, want scenario+assert", m.Name, len(cs.Charts))
		}
	}
}
