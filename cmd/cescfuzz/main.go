// Command cescfuzz runs the generative conformance campaign: random
// well-formed CESC charts and adversarial traces, differentially checked
// against the reference semantics across every execution tier, the
// daemon's ingest paths, and crash/recovery. Divergences are shrunk and
// written as replayable regressions.
//
// Usage:
//
//	cescfuzz -n 500 -seed 1 -out testdata/regressions
//
// The process exits 1 when any divergence is found, printing a
// reproduce line for each.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/conformance"
)

func main() {
	var (
		n             = flag.Int("n", 500, "number of single-clock charts to draw")
		seed          = flag.Int64("seed", 1, "campaign seed (same seed, same campaign)")
		ticks         = flag.Int("ticks", 40, "ticks per generated trace")
		traces        = flag.Int("traces", 2, "adversarial traces per chart")
		asyncN        = flag.Int("async", 0, "multi-clock charts to draw (default n/10)")
		serverEvery   = flag.Int("server-every", 10, "route every k-th chart through a live cescd (-1 disables)")
		recoveryEvery = flag.Int("recovery-every", 2, "crash-recover every k-th server run (-1 disables)")
		pageEvery     = flag.Int("page-every", 3, "page every k-th server run's sessions out between batches (-1 disables)")
		mineEvery     = flag.Int("mine-every", 5, "run the spec-mining round trip on every k-th chart (-1 disables)")
		out           = flag.String("out", "testdata/regressions", "directory for shrunk replayable regressions")
		quiet         = flag.Bool("q", false, "suppress progress lines")
		replay        = flag.Bool("replay", false, "replay the regression corpus in -out instead of fuzzing")
	)
	flag.Parse()

	if *replay {
		ds, err := conformance.ReplayDir(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cescfuzz: %v\n", err)
			os.Exit(2)
		}
		for _, d := range ds {
			fmt.Printf("STILL DIVERGES %s: %s\n", d.File, d.Detail)
		}
		if len(ds) > 0 {
			os.Exit(1)
		}
		fmt.Printf("regression corpus in %s replays clean\n", *out)
		return
	}

	cfg := conformance.Config{
		Seed:           *seed,
		Charts:         *n,
		TracesPerChart: *traces,
		TraceLen:       *ticks,
		AsyncCharts:    *asyncN,
		ServerEvery:    *serverEvery,
		RecoveryEvery:  *recoveryEvery,
		PageEvery:      *pageEvery,
		MineEvery:      *mineEvery,
		RegressionDir:  *out,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := conformance.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cescfuzz: harness error: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("seed=%d charts=%d traces=%d async=%d server-runs=%d recoveries=%d pageouts=%d mine-runs=%d divergences=%d\n",
		rep.Seed, rep.Charts, rep.Traces, rep.AsyncCharts, rep.ServerRuns, rep.Recoveries, rep.Pageouts, rep.MineRuns, len(rep.Divergences))
	for _, d := range rep.Divergences {
		fmt.Printf("DIVERGENCE %s\n", d)
		if d.File != "" {
			fmt.Printf("  regression: %s/%s.cesc (reproduce: cescfuzz -replay -out %s)\n", *out, d.File, *out)
		}
		fmt.Printf("  reproduce campaign: cescfuzz -n %d -seed %d -ticks %d -traces %d\n",
			*n, rep.Seed, *ticks, *traces)
	}
	if len(rep.Divergences) > 0 {
		os.Exit(1)
	}
}
