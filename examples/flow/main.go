// Full verification flow (paper Figure 4, grey boxes included): a
// CESC-based verification plan in textual form is compiled into monitors,
// the monitors are attached to a simulated design under test, stimuli
// run, and verdicts come out — with no hand-written checker anywhere.
//
//	go run ./examples/flow
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/sim"
	"repro/internal/verif"
)

// The verification plan: scenarios captured as CESC text. In a real
// project this lives in .cesc files (see specs/) reviewed alongside the
// design documents.
const plan = `
// Scenario 1: simple read completes in two cycles.
cesc SimpleRead {
  scesc on ocp_clk {
    instances Master, Slave;
    tick {
      cmd = MCmd_rd @ Master -> Slave;
      Addr @ Master -> Slave;
      SCmd_accept @ Slave -> Master;
    }
    tick {
      resp = SResp @ Slave -> Master;
      SData @ Slave -> Master;
    }
    arrow cmd -> resp;
  }
}

// Scenario 2: any accepted command is answered with data on the next
// cycle (assertion form: trigger => consequent).
cesc CmdImpliesData {
  implies {
    scesc Cmd on ocp_clk {
      tick {
        MCmd_rd; Addr; SCmd_accept;
      }
    }
  } {
    scesc Data on ocp_clk {
      tick {
        SResp; SData;
      }
    }
  }
}
`

func main() {
	// Step 1: compile the verification plan.
	arts, err := core.CompileSource(plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d monitors from the CESC verification plan:\n", len(arts))
	for _, a := range arts {
		fmt.Printf("  %-16s %d states\n", a.Name, a.Single.States)
	}

	// Step 2: build the simulation environment with the design under
	// test (the OCP master/slave model) and attach the whole plan as a
	// monitor bank.
	run := func(faultRate float64) {
		s := sim.New()
		d := s.MustAddDomain("ocp_clk", 1, 0)
		model := ocp.NewModel(ocp.Config{Gap: 2, Seed: 42, FaultRate: faultRate})
		d.AddProcess(model.Process())

		bank := verif.NewBank()
		bank.Add(arts[0].Name, arts[0].Single, monitor.ModeDetect)
		assertEng := bank.Add(arts[1].Name, arts[1].Single, monitor.ModeAssert)
		verif.AttachBank(s, "ocp_clk", bank)

		// Step 3: run stimuli.
		if err := s.RunUntil(20000); err != nil {
			log.Fatal(err)
		}

		// Step 4: verdicts, coverage, and counterexamples.
		fmt.Printf("\n--- run with fault rate %.0f%% ---\n", faultRate*100)
		fmt.Printf("transactions: %d (faulted %d)\n", model.Issued(), model.Faulted())
		fmt.Print(bank.Summary())
		if bank.Failed() {
			if diags := assertEng.Diagnostics(); len(diags) > 0 {
				fmt.Println("first counterexample:")
				fmt.Print(diags[0])
			}
		}
	}
	run(0)
	run(0.25)
}
