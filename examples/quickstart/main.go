// Quickstart: build a CESC chart with the Go API, synthesize its
// assertion monitor, and run it over a handcrafted trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/chart"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/render"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	// A two-tick scenario: a guarded request followed by a grant, with a
	// causality arrow from the request to the grant.
	sc := &chart.SCESC{
		ChartName: "req_grant",
		Clock:     "clk",
		Instances: []string{"Master", "Arbiter"},
		Lines: []chart.GridLine{
			{Events: []chart.EventSpec{
				{Event: "req", Label: "r", From: "Master", To: "Arbiter", Guard: expr.Pr("enabled")},
			}},
			{Events: []chart.EventSpec{
				{Event: "grant", Label: "g", From: "Arbiter", To: "Master"},
			}},
		},
		Arrows: []chart.Arrow{{From: "r", To: "g"}},
	}

	fmt.Println("--- the chart, as drawn ---")
	fmt.Print(render.ASCII(sc))

	art, err := core.CompileChart(sc, &synth.Options{NameGuards: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- the synthesized monitor ---")
	fmt.Print(art.Single.String())

	// A trace with one conforming occurrence (ticks 2-3) and one broken
	// attempt (tick 5: request without the enabling condition).
	tr := trace.NewBuilder().
		Idle(2).
		Tick().Events("req").Props("enabled").
		Tick().Events("grant").
		Tick().
		Tick().Events("req"). // guard 'enabled' is false here
		Tick().Events("grant").
		Build()

	det := art.NewDetector()
	for i, s := range tr {
		if det.Step(s) {
			fmt.Printf("\nscenario detected at tick %d\n", i)
		}
	}
	fmt.Printf("total detections: %d\n", det.Accepts())

	fmt.Println("\n--- the same monitor as SystemVerilog ---")
	fmt.Print(codegen.SystemVerilog(art.Single, "req_grant_monitor"))
}
