// AMBA AHB CLI case study (paper Section 6, Figure 8): synthesize the
// transaction monitor, inspect the scoreboard actions it carries, and
// hunt injected protocol bugs in assert mode.
//
//	go run ./examples/ambaahb
package main

import (
	"fmt"
	"log"

	"repro/internal/amba"
	"repro/internal/codegen"
	"repro/internal/monitor"
	"repro/internal/synth"
	"repro/internal/verif"
)

func main() {
	mon, err := synth.Translate(amba.TransactionChart(), &synth.Options{NameGuards: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 8: AMBA AHB CLI transaction monitor ===")
	fmt.Print(mon.String())

	fmt.Println("\n--- DOT graph (render with graphviz) ---")
	fmt.Print(codegen.DOT(mon))

	fmt.Println("--- per-fault detection behaviour ---")
	kinds := []amba.FaultKind{
		amba.FaultDropMasterResponse,
		amba.FaultDropBusResponse,
		amba.FaultLateDataPhase,
		amba.FaultMissingControlInfo,
	}
	for _, k := range kinds {
		rep, err := verif.RunAMBACampaign(amba.Config{
			Gap: 2, Seed: 7, FaultRate: 1, FaultKinds: []amba.FaultKind{k},
		}, 6000, monitor.ModeAssert)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault=%-22s transactions=%d accepts=%d violations=%d\n",
			k, rep.Transactions, rep.Accepts, rep.Violations)
	}

	fmt.Println("\n--- mixed traffic campaign ---")
	rep, err := verif.RunAMBACampaign(amba.Config{Gap: 2, Seed: 8, FaultRate: 0.15}, 30000, monitor.ModeDetect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("clean transactions detected: %d of %d (rate %.3f)\n",
		rep.Accepts, rep.Clean(), rep.DetectionRate())
}
