// Fast path: compile a synthesized monitor into its table-driven form
// and compare throughput against the interpreted engine and the
// hand-written checker on identical OCP burst traffic (the experiment
// E10 ladder, runnable standalone).
//
//	go run ./examples/fastpath
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
	"repro/internal/verif"
)

func main() {
	m, err := synth.Translate(ocp.BurstReadChart(), nil)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := monitor.Compile(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor %s: %d states, transition table %d bytes\n",
		m.Name, m.States, compiled.TableBytes())

	tr := ocp.NewModel(ocp.Config{Gap: 2, Seed: 1, Burst: true}).GenerateTrace(1 << 18)

	// Interpreted engine.
	eng := monitor.NewEngine(m, nil, monitor.ModeDetect)
	start := time.Now()
	for _, s := range tr {
		eng.Step(s)
	}
	engDur := time.Since(start)

	// Compiled table.
	start = time.Now()
	for _, s := range tr {
		compiled.Step(s)
	}
	compDur := time.Since(start)

	// Hand-written checker.
	var manual verif.ManualOCPBurstRead
	start = time.Now()
	for _, s := range tr {
		manual.Step(s)
	}
	manDur := time.Since(start)

	if eng.Stats().Accepts != compiled.Accepts() || compiled.Accepts() != manual.Accepts() {
		log.Fatalf("detection mismatch: engine %d, compiled %d, manual %d",
			eng.Stats().Accepts, compiled.Accepts(), manual.Accepts())
	}
	rate := func(d time.Duration) float64 {
		return float64(len(tr)) / d.Seconds() / 1e6
	}
	fmt.Printf("all three detected %d bursts over %d cycles\n", compiled.Accepts(), len(tr))
	fmt.Printf("interpreted engine : %7.2f M cycles/s\n", rate(engDur))
	fmt.Printf("compiled table     : %7.2f M cycles/s (%.1fx engine)\n", rate(compDur), rate(compDur)/rate(engDur))
	fmt.Printf("hand-written       : %7.2f M cycles/s (%.1fx engine)\n", rate(manDur), rate(manDur)/rate(engDur))
}
