// Multi-clock (GALS) case study (paper Figure 2): the read transaction
// spanning two clock domains, monitored by one local monitor per domain
// synchronizing through the shared scoreboard on the global clock, while
// the modelled system runs on the cycle-based simulator.
//
//	go run ./examples/multiclock
package main

import (
	"fmt"
	"log"

	"repro/internal/mclock"
	"repro/internal/monitor"
	"repro/internal/readproto"
	"repro/internal/semantics"
	"repro/internal/sim"
	"repro/internal/verif"
)

func main() {
	a := readproto.MultiClockChart()
	mm, err := mclock.Synthesize(a, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 2: multi-clock read protocol ===")
	fmt.Print(mm.String())

	// Run the GALS system: clk1 at period 8, clk2 at period 2.
	s := sim.New()
	sys, err := readproto.Build(s, 8, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	ex := mclock.NewExec(mm, monitor.ModeDetect)
	verif.AttachMulti(s, ex)
	s.Record(true)
	if err := s.RunUntil(2000); err != nil {
		log.Fatal(err)
	}
	v := ex.Verdict()
	fmt.Printf("\nsimulated to global time %d\n", s.Now())
	fmt.Printf("transactions issued: %d\n", sys.Requests)
	fmt.Printf("coherent multi-domain acceptances: %d\n", v.Accepts)
	for i, d := range mm.Domains {
		st := v.PerDomain[i]
		fmt.Printf("  %s: %d local ticks, %d local accepts\n", d, st.Steps, st.Accepts)
	}
	fmt.Printf("shared scoreboard after the run: %s\n", ex.Scoreboard())

	// Cross-check the whole captured global run against the reference
	// semantics (the paper's [[C]]).
	if _, ok := semantics.AsyncSatisfied(a, s.Captured()); ok {
		fmt.Println("reference semantics: the captured run satisfies the chart")
	} else {
		fmt.Println("reference semantics: NO satisfying multi-clock window (unexpected)")
	}
}
