// OCP case study (paper Section 6, Figures 6-7): synthesize the simple
// read and pipelined burst read monitors, run them against the OCP
// master/slave model with and without fault injection, and compare with
// the hand-written baseline checker.
//
//	go run ./examples/ocpread
package main

import (
	"fmt"
	"log"

	"repro/internal/monitor"
	"repro/internal/ocp"
	"repro/internal/synth"
	"repro/internal/verif"
)

func main() {
	fmt.Println("=== Figure 6: OCP simple read ===")
	simpleMon, err := synth.Translate(ocp.SimpleReadChart(), &synth.Options{NameGuards: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(simpleMon.String())

	fmt.Println("\n--- clean traffic ---")
	rep, err := verif.RunOCPCampaign(ocp.Config{Gap: 2, Seed: 1}, 20000, monitor.ModeDetect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	fmt.Println("\n--- 20% fault injection, assert mode ---")
	rep, err = verif.RunOCPCampaign(ocp.Config{Gap: 2, Seed: 2, FaultRate: 0.2}, 20000, monitor.ModeAssert)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	fmt.Printf("faulted=%d violations=%d (every abandoned window is flagged)\n",
		rep.Faulted, rep.Violations)

	fmt.Println("\n=== Figure 7: OCP pipelined burst read ===")
	burstMon, err := synth.Translate(ocp.BurstReadChart(), &synth.Options{NameGuards: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(burstMon.String())

	rep, err = verif.RunOCPCampaign(ocp.Config{Gap: 3, Seed: 3, Burst: true}, 20000, monitor.ModeDetect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	fmt.Println("\n--- parity with the hand-written checker ---")
	tr := ocp.NewModel(ocp.Config{Gap: 1, Seed: 4, Burst: true, FaultRate: 0.3}).GenerateTrace(5000)
	par, err := verif.OCPBurstReadParity(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized accepts=%d manual accepts=%d agree=%v\n",
		len(par.SynthAccepts), len(par.ManualAccepts), par.Agree())
}
